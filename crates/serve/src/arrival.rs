//! Seeded query-arrival generation.
//!
//! Arrivals are produced up front as a sorted vector so the event
//! loop consumes a fixed schedule; every stochastic choice is a
//! counter-mode draw keyed by the query index, making the schedule a
//! pure function of `(seed, spec)`.

use faultsim::scenario::SpikeWindow;

use crate::qos::ClassSpec;
use crate::rng::{Stream, STREAM_CLASS, STREAM_INTERARRIVAL, STREAM_VERTEX};
use crate::trace::QueryTrace;
use crate::ServeError;

/// Arrival-rate multiplier in force at `tick`: the product of every
/// overlapping spike window (1.0 outside all of them).
fn rate_mult_at(windows: &[SpikeWindow], tick: u64) -> f64 {
    let mut mult = 1.0;
    for w in windows {
        if tick >= w.start && tick < w.end {
            mult *= w.rate_mult;
        }
    }
    mult
}

/// One inference query entering the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// Arrival time in simulator ticks.
    pub arrival_tick: u64,
    /// Target vertex index within the query vertex type, `< vertex_bound`.
    pub vertex: u32,
    /// QoS class index.
    pub class: u16,
    /// Arrival-order sequence number (ties broken by this).
    pub seq: u32,
}

/// Parameters of a seeded Poisson arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    /// Mean arrival rate, queries per 1024 ticks.
    pub rate_per_ktick: f64,
    /// Number of queries to generate.
    pub queries: u32,
    /// Vertex popularity skew exponent: vertex = ⌊bound·u^skew⌋ for a
    /// uniform `u`, so `skew` 1.0 is uniform and larger values
    /// concentrate traffic on low-numbered vertices (more reuse).
    pub popularity_skew: f64,
}

/// Where queries come from.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Generate a seeded Poisson stream.
    Poisson(PoissonArrivals),
    /// Replay a validated query trace.
    Trace(QueryTrace),
}

impl ArrivalSpec {
    /// Materializes the arrival schedule, sorted by (tick, seq).
    ///
    /// `vertex_bound` is the exclusive id bound of the query vertex
    /// type in the loaded dataset; `classes` the QoS class table.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] on a non-positive rate, zero queries,
    /// non-positive skew, or a trace whose declared bounds exceed the
    /// dataset/class table it is replayed against.
    pub fn generate(
        &self,
        seed: u64,
        vertex_bound: u32,
        classes: &[ClassSpec],
    ) -> Result<Vec<Query>, ServeError> {
        self.generate_scripted(seed, vertex_bound, classes, &[])
    }

    /// [`generate`](Self::generate) with chaos-scenario load-spike
    /// windows modulating the Poisson rate: inside a window the
    /// instantaneous rate is multiplied by the window's `rate_mult`
    /// (overlapping windows compound). An empty slice reproduces the
    /// unscripted schedule byte-for-byte. Trace replays carry their
    /// own timestamps and ignore spikes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`generate`](Self::generate).
    pub fn generate_scripted(
        &self,
        seed: u64,
        vertex_bound: u32,
        classes: &[ClassSpec],
        spikes: &[SpikeWindow],
    ) -> Result<Vec<Query>, ServeError> {
        if vertex_bound == 0 {
            return Err(ServeError::Config("vertex bound is zero".into()));
        }
        if classes.is_empty() {
            return Err(ServeError::Config("no QoS classes".into()));
        }
        match self {
            ArrivalSpec::Poisson(p) => p.generate(seed, vertex_bound, classes, spikes),
            ArrivalSpec::Trace(t) => {
                if t.vertex_bound > vertex_bound {
                    return Err(ServeError::Config(format!(
                        "trace vertex bound {} exceeds dataset bound {vertex_bound}",
                        t.vertex_bound
                    )));
                }
                if usize::from(t.num_classes) > classes.len() {
                    return Err(ServeError::Config(format!(
                        "trace declares {} classes, config has {}",
                        t.num_classes,
                        classes.len()
                    )));
                }
                Ok(t.records
                    .iter()
                    .enumerate()
                    .map(|(i, r)| Query {
                        arrival_tick: r.arrival_tick,
                        vertex: r.vertex,
                        class: r.class,
                        seq: i as u32,
                    })
                    .collect())
            }
        }
    }
}

impl PoissonArrivals {
    fn generate(
        &self,
        seed: u64,
        vertex_bound: u32,
        classes: &[ClassSpec],
        spikes: &[SpikeWindow],
    ) -> Result<Vec<Query>, ServeError> {
        if !self.rate_per_ktick.is_finite() || self.rate_per_ktick <= 0.0 {
            return Err(ServeError::Config(format!(
                "arrival rate must be positive and finite, got {}",
                self.rate_per_ktick
            )));
        }
        if self.queries == 0 {
            return Err(ServeError::Config("zero queries requested".into()));
        }
        if !self.popularity_skew.is_finite() || self.popularity_skew <= 0.0 {
            return Err(ServeError::Config(format!(
                "popularity skew must be positive and finite, got {}",
                self.popularity_skew
            )));
        }
        let lambda = self.rate_per_ktick / 1024.0;
        let inter = Stream::new(seed, STREAM_INTERARRIVAL);
        let vtx = Stream::new(seed, STREAM_VERTEX);
        let cls = Stream::new(seed, STREAM_CLASS);
        // Cumulative class shares for inverse-CDF class draws.
        let total_share: f64 = classes.iter().map(|c| c.share).sum();
        let mut cumulative = Vec::with_capacity(classes.len());
        let mut acc = 0.0;
        for c in classes {
            acc += c.share / total_share;
            cumulative.push(acc);
        }

        let mut out = Vec::with_capacity(self.queries as usize);
        let mut tick = 0u64;
        for i in 0..u64::from(self.queries) {
            // Exponential inter-arrival, floored at one tick so the
            // schedule stays strictly causal at extreme rates. Spike
            // windows scale the instantaneous rate at the previous
            // arrival's tick (a window boundary shifts by at most one
            // gap — negligible against window lengths).
            let mult = rate_mult_at(spikes, tick);
            let delta = (-inter.unit_open(i).ln() / (lambda * mult)).ceil();
            tick = tick.saturating_add((delta as u64).max(1));

            let u = vtx.unit(i);
            let vertex = ((f64::from(vertex_bound) * u.powf(self.popularity_skew)) as u32)
                .min(vertex_bound - 1);

            let cu = cls.unit(i);
            let class = cumulative
                .iter()
                .position(|&edge| cu < edge)
                .unwrap_or(classes.len() - 1) as u16;

            out.push(Query {
                arrival_tick: tick,
                vertex,
                class,
                seq: i as u32,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::default_classes;
    use crate::trace::TraceRecord;

    fn spec(rate: f64, n: u32) -> ArrivalSpec {
        ArrivalSpec::Poisson(PoissonArrivals {
            rate_per_ktick: rate,
            queries: n,
            popularity_skew: 2.0,
        })
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let classes = default_classes();
        let a = spec(8.0, 500).generate(7, 1000, &classes).unwrap();
        let b = spec(8.0, 500).generate(7, 1000, &classes).unwrap();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_tick <= w[1].arrival_tick));
        assert!(a.iter().all(|q| q.vertex < 1000));
        assert!(a.iter().all(|q| usize::from(q.class) < classes.len()));
        let c = spec(8.0, 500).generate(8, 1000, &classes).unwrap();
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn poisson_mean_interarrival_matches_rate() {
        // rate 16/ktick → mean gap 64 ticks; over 20k draws the sample
        // mean should land well within 5%.
        let classes = default_classes();
        let q = spec(16.0, 20_000).generate(3, 10_000, &classes).unwrap();
        let span = q.last().unwrap().arrival_tick - q[0].arrival_tick;
        let mean = span as f64 / (q.len() - 1) as f64;
        assert!(
            (mean - 64.0).abs() < 3.2,
            "sample mean inter-arrival {mean} too far from 64"
        );
    }

    #[test]
    fn skew_concentrates_popularity() {
        let classes = default_classes();
        let skewed = ArrivalSpec::Poisson(PoissonArrivals {
            rate_per_ktick: 8.0,
            queries: 5000,
            popularity_skew: 4.0,
        })
        .generate(1, 1000, &classes)
        .unwrap();
        let low_half = skewed.iter().filter(|q| q.vertex < 500).count();
        assert!(
            low_half > 3500,
            "skew 4 should put most mass on low ids, got {low_half}/5000"
        );
    }

    #[test]
    fn trace_replay_preserves_records() {
        let classes = default_classes();
        let t = QueryTrace {
            num_classes: 2,
            vertex_bound: 10,
            records: vec![
                TraceRecord {
                    arrival_tick: 4,
                    vertex: 1,
                    class: 0,
                },
                TraceRecord {
                    arrival_tick: 9,
                    vertex: 3,
                    class: 1,
                },
            ],
        };
        let q = ArrivalSpec::Trace(t).generate(0, 10, &classes).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q[1].arrival_tick, 9);
        assert_eq!(q[1].seq, 1);
    }

    #[test]
    fn spikes_compress_gaps_inside_the_window() {
        let classes = default_classes();
        let windows = [SpikeWindow {
            start: 0,
            end: u64::MAX,
            rate_mult: 8.0,
        }];
        let base = spec(4.0, 2000).generate(9, 100, &classes).unwrap();
        let spiked = spec(4.0, 2000)
            .generate_scripted(9, 100, &classes, &windows)
            .unwrap();
        let span = |q: &[Query]| q.last().unwrap().arrival_tick - q[0].arrival_tick;
        assert!(
            span(&spiked) * 4 < span(&base),
            "8× spike must compress the schedule (base {} vs spiked {})",
            span(&base),
            span(&spiked)
        );
        // Everything except timing is untouched.
        for (a, b) in base.iter().zip(&spiked) {
            assert_eq!((a.vertex, a.class, a.seq), (b.vertex, b.class, b.seq));
        }
        // No windows reproduces the unscripted schedule exactly.
        let unscripted = spec(4.0, 2000)
            .generate_scripted(9, 100, &classes, &[])
            .unwrap();
        assert_eq!(base, unscripted);
    }

    #[test]
    fn rejects_bad_parameters() {
        let classes = default_classes();
        assert!(spec(0.0, 10).generate(0, 10, &classes).is_err());
        assert!(spec(-3.0, 10).generate(0, 10, &classes).is_err());
        assert!(spec(f64::NAN, 10).generate(0, 10, &classes).is_err());
        assert!(spec(f64::INFINITY, 10).generate(0, 10, &classes).is_err());
        assert!(spec(1.0, 0).generate(0, 10, &classes).is_err());
        assert!(spec(1.0, 10).generate(0, 0, &classes).is_err());
        for skew in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let s = ArrivalSpec::Poisson(PoissonArrivals {
                rate_per_ktick: 1.0,
                queries: 10,
                popularity_skew: skew,
            });
            assert!(s.generate(0, 10, &classes).is_err(), "skew {skew}");
        }
        let t = QueryTrace {
            num_classes: 2,
            vertex_bound: 100,
            records: vec![],
        };
        assert!(ArrivalSpec::Trace(t).generate(0, 10, &classes).is_err());
    }
}

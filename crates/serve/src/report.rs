//! The serving run report.
//!
//! Everything here lives in the simulated clock domain — no wall
//! clock, no host topology — so a report is a pure function of
//! `(config, seed)` and serializes byte-identically across runs,
//! thread counts, and machines.

use faultsim::HealthState;
use serde::{Deserialize, Serialize};

use crate::batch::BatchPolicy;
use crate::cache::CacheStats;

/// Latency summary extracted from an [`obs::LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency in ticks.
    pub mean_ticks: f64,
    /// Minimum observed latency.
    pub min_ticks: u64,
    /// Median (log2-bucket upper bound; ≤2× the true value).
    pub p50_ticks: u64,
    /// 99th percentile.
    pub p99_ticks: u64,
    /// 99.9th percentile.
    pub p999_ticks: u64,
    /// Maximum observed latency.
    pub max_ticks: u64,
}

impl LatencyStats {
    /// Extracts the summary from a histogram.
    pub fn from_histogram(h: &obs::LatencyHistogram) -> LatencyStats {
        LatencyStats {
            count: h.count(),
            mean_ticks: h.mean(),
            min_ticks: h.min(),
            p50_ticks: h.p50(),
            p99_ticks: h.p99(),
            p999_ticks: h.p999(),
            max_ticks: h.max(),
        }
    }
}

/// One QoS class's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// Class name.
    pub name: String,
    /// Dispatch priority.
    pub priority: u8,
    /// Queries served.
    pub queries: u64,
    /// Queries shed by admission control.
    pub shed: u64,
    /// Queries answered as degraded-quality brownouts.
    pub brownouts: u64,
    /// End-to-end latency (arrival → completion) of served queries.
    pub latency: LatencyStats,
    /// The class's p99 target in ticks.
    pub target_p99_ticks: u64,
    /// Whether observed p99 met the target.
    pub attained: bool,
}

/// Reuse-cache outcome.
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct CacheReport {
    /// Capacity in entries (0 = caching disabled).
    pub capacity_entries: u64,
    /// Raw hit/miss/eviction counters.
    pub stats: CacheStats,
    /// Overall hit rate in `[0, 1]`.
    pub hit_rate: f64,
}

/// One DIMM's utilization.
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct DimmReport {
    /// DIMM index (channel-major).
    pub dimm: u64,
    /// Whether a stalled rank degraded this DIMM at any point in the
    /// run (fault model or chaos scenario).
    pub stalled: bool,
    /// Circuit-breaker health at end of run (always `Healthy` when
    /// breakers are disabled).
    pub health: HealthState,
    /// Batches served.
    pub batches: u64,
    /// Queries served.
    pub queries: u64,
    /// Ticks spent busy.
    pub busy_ticks: u64,
    /// busy_ticks / makespan.
    pub utilization: f64,
}

/// Batching behavior summary.
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct BatchReport {
    /// Batches dispatched.
    pub total: u64,
    /// Closed by hitting the class size cap.
    pub closed_by_size: u64,
    /// Closed by the wait deadline.
    pub closed_by_deadline: u64,
    /// Flushed at end-of-arrivals drain.
    pub closed_by_drain: u64,
    /// Closed early for an idle DIMM (work-conserving mode, only
    /// under admission control).
    pub closed_by_idle: u64,
    /// Mean queries per batch.
    pub mean_size: f64,
}

impl BatchReport {
    pub(crate) fn record(&mut self, policy: BatchPolicy) {
        self.total += 1;
        match policy {
            BatchPolicy::Size => self.closed_by_size += 1,
            BatchPolicy::Deadline => self.closed_by_deadline += 1,
            BatchPolicy::Drain => self.closed_by_drain += 1,
            BatchPolicy::Idle => self.closed_by_idle += 1,
        }
    }
}

/// Fault-model impact on the serving run.
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct FaultReport {
    /// DIMMs degraded by a permanently stalled rank.
    pub stalled_dimms: u64,
    /// Total transient stall ticks charged to dispatches.
    pub transient_stall_ticks: u64,
    /// Dispatches that suffered a transient stall.
    pub transient_stall_events: u64,
}

/// Admission-control outcome of one serving run (all zero / disabled
/// when no [`crate::AdmissionConfig`] is set — nothing is ever
/// dropped then).
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct AdmissionReport {
    /// Whether admission control ran.
    pub enabled: bool,
    /// Queries admitted for normal service.
    pub accepted: u64,
    /// Sheds because the queue-depth hysteresis gate was shut.
    pub shed_queue_depth: u64,
    /// Sheds because the token bucket was empty.
    pub shed_rate_limit: u64,
    /// Sheds because the class deadline was predicted unmeetable.
    pub shed_deadline: u64,
    /// Queries answered as root-cache-only degraded brownouts instead
    /// of being shed.
    pub brownouts: u64,
    /// Times the hysteresis gate transitioned open → shut.
    pub gate_closures: u64,
    /// Latency of brownout responses (combine-only, no queueing).
    pub brownout_latency: LatencyStats,
}

/// Per-DIMM circuit-breaker outcome (all zero / disabled without
/// admission control).
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct BreakerReport {
    /// Whether breakers ran.
    pub enabled: bool,
    /// Breaker trips (closed/half-open → open transitions).
    pub trips: u64,
    /// Half-open probes that closed a breaker again.
    pub reopens: u64,
    /// Completions classified slow.
    pub slow_completions: u64,
    /// Total DIMM-ticks spent with a breaker open.
    pub open_ticks: u64,
    /// DIMMs still open (tripped) at end of run.
    pub open_at_end: u64,
}

/// What the chaos scenario actually did to the run (all zero for an
/// empty scenario).
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Events in the script.
    pub scripted_events: u64,
    /// Load-spike windows applied to arrival generation.
    pub spike_windows: u64,
    /// Timeline effects applied during the run.
    pub applied_effects: u64,
    /// Reuse-cache flushes performed.
    pub cache_flushes: u64,
    /// Rank stall/unstall transitions performed.
    pub rank_stall_changes: u64,
    /// Fleet shrink/grow events performed.
    pub fleet_changes: u64,
}

/// The full outcome of one serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Seed the run was driven by.
    pub seed: u64,
    /// Offered arrival rate in queries per 1024 ticks (0 for traces).
    pub offered_rate_per_ktick: f64,
    /// Queries that arrived (served + shed + brownouts).
    pub arrived: u64,
    /// Queries served normally (= arrived when admission is off).
    pub queries: u64,
    /// Tick of the last completion.
    pub makespan_ticks: u64,
    /// Achieved throughput in queries per 1024 ticks.
    pub achieved_rate_per_ktick: f64,
    /// End-to-end latency across all classes.
    pub latency: LatencyStats,
    /// Queueing delay (arrival → dispatch) across all classes.
    pub queue_delay: LatencyStats,
    /// Per-class outcomes, in class order.
    pub classes: Vec<ClassReport>,
    /// Reuse-cache outcome.
    pub cache: CacheReport,
    /// Batching summary.
    pub batches: BatchReport,
    /// Per-DIMM utilization, in DIMM order.
    pub dimms: Vec<DimmReport>,
    /// Fault impact (all zero for a fault-free run).
    pub faults: FaultReport,
    /// Admission-control outcome.
    pub admission: AdmissionReport,
    /// Circuit-breaker outcome.
    pub breakers: BreakerReport,
    /// Chaos-scenario outcome.
    pub chaos: ChaosReport,
}

//! The serving run report.
//!
//! Everything here lives in the simulated clock domain — no wall
//! clock, no host topology — so a report is a pure function of
//! `(config, seed)` and serializes byte-identically across runs,
//! thread counts, and machines.

use serde::{Deserialize, Serialize};

use crate::batch::BatchPolicy;
use crate::cache::CacheStats;

/// Latency summary extracted from an [`obs::LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency in ticks.
    pub mean_ticks: f64,
    /// Minimum observed latency.
    pub min_ticks: u64,
    /// Median (log2-bucket upper bound; ≤2× the true value).
    pub p50_ticks: u64,
    /// 99th percentile.
    pub p99_ticks: u64,
    /// 99.9th percentile.
    pub p999_ticks: u64,
    /// Maximum observed latency.
    pub max_ticks: u64,
}

impl LatencyStats {
    /// Extracts the summary from a histogram.
    pub fn from_histogram(h: &obs::LatencyHistogram) -> LatencyStats {
        LatencyStats {
            count: h.count(),
            mean_ticks: h.mean(),
            min_ticks: h.min(),
            p50_ticks: h.p50(),
            p99_ticks: h.p99(),
            p999_ticks: h.p999(),
            max_ticks: h.max(),
        }
    }
}

/// One QoS class's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// Class name.
    pub name: String,
    /// Dispatch priority.
    pub priority: u8,
    /// Queries served.
    pub queries: u64,
    /// End-to-end latency (arrival → completion).
    pub latency: LatencyStats,
    /// The class's p99 target in ticks.
    pub target_p99_ticks: u64,
    /// Whether observed p99 met the target.
    pub attained: bool,
}

/// Reuse-cache outcome.
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct CacheReport {
    /// Capacity in entries (0 = caching disabled).
    pub capacity_entries: u64,
    /// Raw hit/miss/eviction counters.
    pub stats: CacheStats,
    /// Overall hit rate in `[0, 1]`.
    pub hit_rate: f64,
}

/// One DIMM's utilization.
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct DimmReport {
    /// DIMM index (channel-major).
    pub dimm: u64,
    /// Whether a permanently stalled rank degrades this DIMM.
    pub stalled: bool,
    /// Batches served.
    pub batches: u64,
    /// Queries served.
    pub queries: u64,
    /// Ticks spent busy.
    pub busy_ticks: u64,
    /// busy_ticks / makespan.
    pub utilization: f64,
}

/// Batching behavior summary.
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct BatchReport {
    /// Batches dispatched.
    pub total: u64,
    /// Closed by hitting the class size cap.
    pub closed_by_size: u64,
    /// Closed by the wait deadline.
    pub closed_by_deadline: u64,
    /// Flushed at end-of-arrivals drain.
    pub closed_by_drain: u64,
    /// Mean queries per batch.
    pub mean_size: f64,
}

impl BatchReport {
    pub(crate) fn record(&mut self, policy: BatchPolicy) {
        self.total += 1;
        match policy {
            BatchPolicy::Size => self.closed_by_size += 1,
            BatchPolicy::Deadline => self.closed_by_deadline += 1,
            BatchPolicy::Drain => self.closed_by_drain += 1,
        }
    }
}

/// Fault-model impact on the serving run.
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct FaultReport {
    /// DIMMs degraded by a permanently stalled rank.
    pub stalled_dimms: u64,
    /// Total transient stall ticks charged to dispatches.
    pub transient_stall_ticks: u64,
    /// Dispatches that suffered a transient stall.
    pub transient_stall_events: u64,
}

/// The full outcome of one serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Seed the run was driven by.
    pub seed: u64,
    /// Offered arrival rate in queries per 1024 ticks (0 for traces).
    pub offered_rate_per_ktick: f64,
    /// Queries served (= queries arrived; nothing is dropped).
    pub queries: u64,
    /// Tick of the last completion.
    pub makespan_ticks: u64,
    /// Achieved throughput in queries per 1024 ticks.
    pub achieved_rate_per_ktick: f64,
    /// End-to-end latency across all classes.
    pub latency: LatencyStats,
    /// Queueing delay (arrival → dispatch) across all classes.
    pub queue_delay: LatencyStats,
    /// Per-class outcomes, in class order.
    pub classes: Vec<ClassReport>,
    /// Reuse-cache outcome.
    pub cache: CacheReport,
    /// Batching summary.
    pub batches: BatchReport,
    /// Per-DIMM utilization, in DIMM order.
    pub dimms: Vec<DimmReport>,
    /// Fault impact (all zero for a fault-free run).
    pub faults: FaultReport,
}

//! # serve — online HGNN inference serving simulation
//!
//! Every other experiment in this workspace runs one offline
//! full-graph epoch. This crate models the scenario the accelerator
//! ultimately exists for: a *stream* of per-vertex inference queries
//! hitting MetaNMP concurrently, under load, with latency targets.
//!
//! The simulator is discrete-time and fully deterministic — every
//! stochastic decision is a pure function of `(seed, stream, event
//! index)` via counter-mode hashing (the same discipline as
//! [`faultsim`]), so a schedule reproduces exactly from its seed and
//! is insensitive to host thread count.
//!
//! Pipeline, in arrival order:
//!
//! 1. **Arrivals** ([`arrival`]) — seeded Poisson with a power-law
//!    vertex popularity skew, or replay of an on-disk query trace
//!    ([`trace`], format `QTR1`).
//! 2. **Batching** ([`batch`]) — per-QoS-class accumulation closed by
//!    a batch-size or deadline policy.
//! 3. **QoS scheduling** ([`qos`], [`sim`]) — ready batches dispatch
//!    to idle DIMMs in (priority, deadline, age) order.
//! 4. **Service** ([`workload`]) — per-query cost calibrated against
//!    one cycle-accurate [`metanmp::Simulator`] epoch, scaled by the
//!    query vertex's metapath-instance fan-out, and discounted by the
//!    inter-query **reuse cache** ([`cache`]): an LRU over projected
//!    root aggregates and first-hop metapath prefix-aggregates, the
//!    reusability HiHGNN quantifies across concurrent queries.
//! 5. **Faults** — a [`faultsim::FaultInjector`] drives permanently
//!    stalled DIMMs (service-rate slowdown) and transient stalls, so
//!    a sick rank surfaces as a tail-latency spike, not a crash.
//!
//! The run produces a [`ServeReport`]: p50/p99/p999 latency (via
//! [`obs::LatencyHistogram`], which stays real when telemetry is
//! compiled out), per-class QoS attainment, cache hit rates, per-DIMM
//! utilization, and batch statistics — everything in the simulated
//! clock domain, so two runs of one seed are byte-identical.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod batch;
pub mod cache;
mod error;
pub mod qos;
mod rng;
pub mod sim;
pub mod trace;
pub mod workload;

mod report;

pub use arrival::{ArrivalSpec, PoissonArrivals, Query};
pub use batch::BatchPolicy;
pub use cache::CacheStats;
pub use error::ServeError;
pub use qos::{default_classes, ClassSpec};
pub use report::{
    BatchReport, CacheReport, ClassReport, DimmReport, FaultReport, LatencyStats, ServeReport,
};
pub use sim::{simulate, ServeConfig};
pub use trace::{load_trace, save_trace, QueryTrace, TraceError, TraceRecord};
pub use workload::ServeWorkload;

//! # serve — online HGNN inference serving simulation
//!
//! Every other experiment in this workspace runs one offline
//! full-graph epoch. This crate models the scenario the accelerator
//! ultimately exists for: a *stream* of per-vertex inference queries
//! hitting MetaNMP concurrently, under load, with latency targets.
//!
//! The simulator is discrete-time and fully deterministic — every
//! stochastic decision is a pure function of `(seed, stream, event
//! index)` via counter-mode hashing (the same discipline as
//! [`faultsim`]), so a schedule reproduces exactly from its seed and
//! is insensitive to host thread count.
//!
//! Pipeline, in arrival order:
//!
//! 1. **Arrivals** ([`arrival`]) — seeded Poisson with a power-law
//!    vertex popularity skew, or replay of an on-disk query trace
//!    ([`trace`], format `QTR1`).
//! 2. **Batching** ([`batch`]) — per-QoS-class accumulation closed by
//!    a batch-size or deadline policy.
//! 3. **QoS scheduling** ([`qos`], [`sim`]) — ready batches dispatch
//!    to idle DIMMs in (priority, deadline, age) order.
//! 4. **Service** ([`workload`]) — per-query cost calibrated against
//!    one cycle-accurate [`metanmp::Simulator`] epoch, scaled by the
//!    query vertex's metapath-instance fan-out, and discounted by the
//!    inter-query **reuse cache** ([`cache`]): an LRU over projected
//!    root aggregates and first-hop metapath prefix-aggregates, the
//!    reusability HiHGNN quantifies across concurrent queries.
//! 5. **Faults** — a [`faultsim::FaultInjector`] drives permanently
//!    stalled DIMMs (service-rate slowdown) and transient stalls, so
//!    a sick rank surfaces as a tail-latency spike, not a crash.
//! 6. **Overload protection** ([`admission`], opt-in) — a token
//!    bucket plus queue-depth hysteresis gate admits queries,
//!    deadline-aware shedding drops the ones whose class target is
//!    already unmeetable (with per-class shed budgets and structured
//!    [`ShedReason`]s), per-DIMM circuit breakers trip on
//!    fault-degraded ranks and half-open on a [`faultsim::Backoff`]
//!    schedule, and root-cache-resident queries get degraded-quality
//!    *brownout* answers instead of rejections.
//! 7. **Chaos scenarios** ([`faultsim::Scenario`], opt-in) — a seeded
//!    script of load spikes, rank stalls, cache flushes, and fleet
//!    resizes over simulated time, replaying byte-identically.
//!
//! The run produces a [`ServeReport`]: p50/p99/p999 latency (via
//! [`obs::LatencyHistogram`], which stays real when telemetry is
//! compiled out), per-class QoS attainment, cache hit rates, per-DIMM
//! utilization, batch statistics, and admission / breaker / chaos
//! outcomes — everything in the simulated clock domain, so two runs
//! of one seed are byte-identical.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod arrival;
pub mod batch;
pub mod cache;
mod error;
pub mod qos;
mod rng;
pub mod sim;
pub mod trace;
pub mod workload;

mod report;

pub use admission::{AdmissionConfig, ShedReason};
pub use arrival::{ArrivalSpec, PoissonArrivals, Query};
pub use batch::BatchPolicy;
pub use cache::CacheStats;
pub use error::ServeError;
// Re-exported so downstream crates can script chaos scenarios without
// a direct faultsim dependency (the type appears in [`ServeConfig`]).
pub use faultsim::Scenario;
pub use qos::{default_classes, ClassSpec};
pub use report::{
    AdmissionReport, BatchReport, BreakerReport, CacheReport, ChaosReport, ClassReport, DimmReport,
    FaultReport, LatencyStats, ServeReport,
};
pub use sim::{simulate, ServeConfig};
pub use trace::{load_trace, save_trace, QueryTrace, TraceError, TraceRecord};
pub use workload::ServeWorkload;

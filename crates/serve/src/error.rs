//! Structured errors for the serving simulator.

use crate::trace::TraceError;

/// Anything that can stop a serving simulation from running.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid configuration (zero classes, bad shares, rate ≤ 0, …).
    Config(String),
    /// Graph/metapath query failed while building the workload model.
    Graph(hetgraph::GraphError),
    /// The calibration epoch on the cycle-accurate simulator failed.
    Calibration(metanmp::MetanmpError),
    /// A query trace failed to load or validate.
    Trace(TraceError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "serve config: {msg}"),
            ServeError::Graph(e) => write!(f, "serve workload: {e}"),
            ServeError::Calibration(e) => write!(f, "serve calibration: {e}"),
            ServeError::Trace(e) => write!(f, "serve trace: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Graph(e) => Some(e),
            ServeError::Calibration(e) => Some(e),
            ServeError::Trace(e) => Some(e),
            ServeError::Config(_) => None,
        }
    }
}

impl From<hetgraph::GraphError> for ServeError {
    fn from(e: hetgraph::GraphError) -> Self {
        ServeError::Graph(e)
    }
}

impl From<metanmp::MetanmpError> for ServeError {
    fn from(e: metanmp::MetanmpError) -> Self {
        ServeError::Calibration(e)
    }
}

impl From<TraceError> for ServeError {
    fn from(e: TraceError) -> Self {
        ServeError::Trace(e)
    }
}

//! Inter-query reuse cache.
//!
//! HiHGNN observes that concurrent HGNN inference queries share
//! enormous amounts of intermediate state: a vertex's projected
//! feature / per-metapath root aggregate serves every query that
//! touches it, and a metapath *prefix* aggregate rooted at a shared
//! first-hop neighbor serves every query whose metapath instances
//! pass through that neighbor. This module models that reuse as a
//! deterministic LRU keyed by `(metapath, kind, node)`; a hit turns a
//! full suffix-subtree walk into a single combine.
//!
//! The LRU is a `HashMap<Key, seq>` paired with a `BTreeMap<seq, Key>`
//! recency index — eviction order depends only on the access sequence,
//! never on hash iteration order, so runs are reproducible.

use std::collections::{BTreeMap, HashMap};

/// What a cache entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum EntryKind {
    /// A query vertex's fully-aggregated per-metapath result.
    Root,
    /// A first-hop neighbor's metapath prefix aggregate.
    Prefix,
}

/// Cache key: which aggregate, for which metapath, at which node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct Key {
    pub mp: u8,
    pub kind: EntryKind,
    pub node: u32,
}

/// Hit/miss telemetry for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Root-aggregate lookups that hit.
    pub root_hits: u64,
    /// Root-aggregate lookups that missed.
    pub root_misses: u64,
    /// Prefix-aggregate lookups that hit.
    pub prefix_hits: u64,
    /// Prefix-aggregate lookups that missed.
    pub prefix_misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Whole-cache flushes (chaos-scenario miss storms).
    pub flushes: u64,
}

impl CacheStats {
    /// Overall hit rate across both entry kinds, 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.root_hits + self.prefix_hits;
        let total = hits + self.root_misses + self.prefix_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Deterministic LRU over reuse entries.
#[derive(Debug)]
pub(crate) struct ReuseCache {
    capacity: usize,
    seq: u64,
    by_key: HashMap<Key, u64>,
    by_recency: BTreeMap<u64, Key>,
    pub(crate) stats: CacheStats,
}

impl ReuseCache {
    /// `capacity` in entries; zero disables caching (every lookup
    /// misses and nothing is stored).
    pub(crate) fn new(capacity: usize) -> Self {
        ReuseCache {
            capacity,
            seq: 0,
            by_key: HashMap::new(),
            by_recency: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    fn touch(&mut self, key: Key, old_seq: u64) {
        self.by_recency.remove(&old_seq);
        self.seq += 1;
        self.by_recency.insert(self.seq, key);
        self.by_key.insert(key, self.seq);
    }

    /// Looks up `key`, refreshing recency on hit and recording stats.
    pub(crate) fn lookup(&mut self, key: Key) -> bool {
        let hit = self.by_key.get(&key).copied();
        match (hit, key.kind) {
            (Some(s), EntryKind::Root) => {
                self.stats.root_hits += 1;
                self.touch(key, s);
                true
            }
            (Some(s), EntryKind::Prefix) => {
                self.stats.prefix_hits += 1;
                self.touch(key, s);
                true
            }
            (None, EntryKind::Root) => {
                self.stats.root_misses += 1;
                false
            }
            (None, EntryKind::Prefix) => {
                self.stats.prefix_misses += 1;
                false
            }
        }
    }

    /// Inserts `key` as most-recent, evicting the least-recent entry
    /// if at capacity.
    pub(crate) fn insert(&mut self, key: Key) {
        if self.capacity == 0 {
            return;
        }
        if let Some(s) = self.by_key.get(&key).copied() {
            self.touch(key, s);
            return;
        }
        if self.by_key.len() >= self.capacity {
            // BTreeMap iteration gives the smallest (oldest) seq first.
            if let Some((&old_seq, &old_key)) = self.by_recency.iter().next() {
                self.by_recency.remove(&old_seq);
                self.by_key.remove(&old_key);
                self.stats.evictions += 1;
            }
        }
        self.seq += 1;
        self.by_recency.insert(self.seq, key);
        self.by_key.insert(key, self.seq);
    }

    /// Whether `key` is resident, without touching recency or stats —
    /// the admission layer's brownout probe.
    pub(crate) fn peek(&self, key: Key) -> bool {
        self.by_key.contains_key(&key)
    }

    /// Drops every entry (a chaos-scenario miss storm). Counters other
    /// than `flushes` are untouched; evictions only count
    /// capacity-pressure drops.
    pub(crate) fn flush(&mut self) {
        self.by_key.clear();
        self.by_recency.clear();
        self.stats.flushes += 1;
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.by_key.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root(node: u32) -> Key {
        Key {
            mp: 0,
            kind: EntryKind::Root,
            node,
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = ReuseCache::new(2);
        c.insert(root(1));
        c.insert(root(2));
        assert!(c.lookup(root(1))); // 1 now most recent
        c.insert(root(3)); // evicts 2
        assert!(c.lookup(root(1)));
        assert!(!c.lookup(root(2)));
        assert!(c.lookup(root(3)));
        assert_eq!(c.stats.evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn stats_track_hits_and_misses_per_kind() {
        let mut c = ReuseCache::new(4);
        let p = Key {
            mp: 1,
            kind: EntryKind::Prefix,
            node: 7,
        };
        assert!(!c.lookup(p));
        c.insert(p);
        assert!(c.lookup(p));
        assert!(!c.lookup(root(9)));
        assert_eq!(c.stats.prefix_misses, 1);
        assert_eq!(c.stats.prefix_hits, 1);
        assert_eq!(c.stats.root_misses, 1);
        assert_eq!(c.stats.root_hits, 0);
        let r = c.stats.hit_rate();
        assert!((r - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ReuseCache::new(0);
        c.insert(root(1));
        assert!(!c.lookup(root(1)));
        assert_eq!(c.stats.evictions, 0);
    }

    #[test]
    fn flush_empties_without_counting_evictions() {
        let mut c = ReuseCache::new(8);
        c.insert(root(1));
        c.insert(root(2));
        assert!(c.peek(root(1)));
        c.flush();
        assert_eq!(c.len(), 0);
        assert!(!c.peek(root(1)));
        assert!(!c.lookup(root(1)));
        assert_eq!(c.stats.flushes, 1);
        assert_eq!(c.stats.evictions, 0);
        // Peek leaves stats untouched; the lookup above recorded the
        // only miss.
        assert_eq!(c.stats.root_misses, 1);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = ReuseCache::new(2);
        c.insert(root(1));
        c.insert(root(1));
        c.insert(root(2));
        c.insert(root(3)); // should evict 2? no: 1 refreshed before 2 inserted → oldest is 1
        assert_eq!(c.len(), 2);
        assert!(!c.lookup(root(1)));
        assert!(c.lookup(root(2)));
        assert!(c.lookup(root(3)));
    }
}

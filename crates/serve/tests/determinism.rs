//! End-to-end determinism of the serving simulator across full
//! rebuilds: two independently built workloads (dataset generation +
//! calibration epoch each time) must produce byte-identical report
//! JSON for the same config, and a trace written with `save_trace`
//! must replay identically to its in-memory original.

use serve::{
    load_trace, save_trace, ArrivalSpec, PoissonArrivals, QueryTrace, ServeConfig, ServeWorkload,
    TraceRecord,
};

fn config() -> ServeConfig {
    let mut c = ServeConfig::smoke_test();
    c.seed = 11;
    c.arrivals = ArrivalSpec::Poisson(PoissonArrivals {
        rate_per_ktick: 60.0,
        queries: 400,
        popularity_skew: 2.0,
    });
    c
}

#[test]
fn independently_rebuilt_workloads_serve_identically() {
    let cfg = config();
    let reports: Vec<String> = (0..2)
        .map(|_| {
            let workload = ServeWorkload::build(&cfg).expect("build workload");
            let report = serve::simulate(&cfg, &workload).expect("simulate");
            serde_json::to_string_pretty(&report).expect("serialize")
        })
        .collect();
    assert_eq!(
        reports[0], reports[1],
        "two full workload rebuilds produced different reports"
    );
}

#[test]
fn saved_trace_replays_identically_to_poisson_original() {
    let cfg = config();
    let workload = ServeWorkload::build(&cfg).expect("build workload");
    let poisson = serve::simulate(&cfg, &workload).expect("simulate poisson");

    // Re-derive the arrival stream exactly as the simulator saw it,
    // round-trip it through the QTR1 format, and replay it.
    let queries = cfg
        .arrivals
        .generate(cfg.seed, workload.vertex_bound(), &cfg.classes)
        .expect("regenerate arrivals");
    let trace = QueryTrace {
        num_classes: cfg.classes.len() as u16,
        vertex_bound: workload.vertex_bound(),
        records: queries
            .iter()
            .map(|q| TraceRecord {
                arrival_tick: q.arrival_tick,
                vertex: q.vertex,
                class: q.class,
            })
            .collect(),
    };
    let mut bytes = Vec::new();
    save_trace(&trace, &mut bytes).expect("save trace");
    let loaded = load_trace(bytes.as_slice()).expect("load trace");
    assert_eq!(loaded, trace, "QTR1 roundtrip changed the trace");

    let mut replay_cfg = cfg.clone();
    replay_cfg.arrivals = ArrivalSpec::Trace(loaded);
    let replayed = serve::simulate(&replay_cfg, &workload).expect("simulate replay");

    // The reports differ only in the offered-rate field (traces carry
    // no rate); everything downstream of arrivals — latency, cache,
    // batching, per-DIMM work — must match exactly.
    assert_eq!(
        poisson.latency, replayed.latency,
        "replayed latency differs from the live Poisson run"
    );
    assert_eq!(poisson.cache, replayed.cache);
    assert_eq!(poisson.batches, replayed.batches);
    assert_eq!(poisson.dimms, replayed.dimms);
    assert_eq!(poisson.makespan_ticks, replayed.makespan_ticks);
}

//! Overload-resilience acceptance: under a scripted chaos scenario
//! (load spike + rank-stall window), admission control must keep the
//! accepted-query p99 of every class within its target while goodput
//! stays at ≥80% of cache-cold capacity — and the same run with
//! admission disabled must demonstrably breach the targets. All
//! artifacts replay byte-identically.

use faultsim::Scenario;
use serve::{AdmissionConfig, ArrivalSpec, ClassSpec, PoissonArrivals, ServeConfig, ServeWorkload};

/// The scripted chaos scenario: a 3× load spike over the middle of
/// the arrival span, overlapping a window where the ranks of DIMMs
/// 0–1 stall (2 ranks per DIMM → mask 0x0f) and a mid-run cache
/// flush.
const SCENARIO: &str = "CHS1\n\
    spike 5000 15000 3.0\n\
    stall 6000 0x0f\n\
    unstall 20000 0x0f\n\
    flush 9000\n";

fn workload() -> &'static ServeWorkload {
    use std::sync::OnceLock;
    static W: OnceLock<ServeWorkload> = OnceLock::new();
    W.get_or_init(|| ServeWorkload::build(&ServeConfig::smoke_test()).expect("build workload"))
}

/// Cache-cold system capacity in queries per 1024 ticks.
fn cold_capacity() -> f64 {
    let w = workload();
    w.dimms() as f64 * 1024.0 / w.mean_query_ticks()
}

/// One real-time class with a log2-bucket-aligned p99 target: the
/// histogram reports bucket upper bounds, so 65_535 (= 2^16 − 1) is
/// exactly representable and the admission cutoff equals the target.
fn config(protected: bool) -> ServeConfig {
    let w = workload();
    let mut c = ServeConfig::smoke_test();
    c.seed = 23;
    c.classes = vec![ClassSpec {
        name: "rt",
        priority: 1,
        share: 1.0,
        target_p99_ticks: 65_535,
        max_batch: 1,
        max_wait_ticks: 1,
    }];
    // 6× cold capacity (≈5× the warm-cache effective capacity at the
    // observed hit rate), tripling to 18× inside the spike window —
    // deep overload for the whole arrival span.
    c.arrivals = ArrivalSpec::Poisson(PoissonArrivals {
        rate_per_ktick: 6.0 * cold_capacity(),
        queries: 10_000,
        popularity_skew: 2.0,
    });
    c.scenario = Scenario::parse(SCENARIO).expect("valid scenario");
    if protected {
        c.admission = Some(AdmissionConfig::for_capacity(cold_capacity(), w.dimms()));
    }
    c
}

#[test]
fn admission_attains_targets_and_keeps_goodput_under_chaos() {
    let r = serve::simulate(&config(true), workload()).expect("protected run");
    let breach = serve::simulate(&config(false), workload()).expect("unprotected run");

    // The scenario actually ran: spike shaped arrivals, stalls and the
    // flush applied, breakers saw the slow DIMMs.
    assert_eq!(r.chaos.spike_windows, 1);
    assert_eq!(r.chaos.rank_stall_changes, 2);
    assert_eq!(r.chaos.cache_flushes, 1);
    assert_eq!(r.faults.stalled_dimms, 2);
    assert!(r.admission.enabled && r.breakers.enabled);

    // Every class's accepted-query p99 meets its target under attack.
    for c in &r.classes {
        assert!(
            c.attained,
            "class {} breached under protection: p99 {} > target {}",
            c.name, c.latency.p99_ticks, c.target_p99_ticks
        );
    }

    // Goodput stays at ≥80% of cache-cold capacity.
    let goodput_frac = r.achieved_rate_per_ktick / cold_capacity();
    assert!(
        goodput_frac >= 0.8,
        "goodput {:.1}% of cold capacity (achieved {:.2}, capacity {:.2})",
        100.0 * goodput_frac,
        r.achieved_rate_per_ktick,
        cold_capacity()
    );

    // Overload really was shed somewhere, with structured accounting.
    let dropped = r.arrived - r.queries;
    assert!(dropped > 0, "6–18× overload must shed or brown out");
    assert_eq!(
        r.admission.shed_queue_depth
            + r.admission.shed_rate_limit
            + r.admission.shed_deadline
            + r.admission.brownouts,
        dropped,
        "every drop is accounted for"
    );

    // The same scenario without admission breaches the target.
    assert_eq!(breach.arrived, breach.queries, "unprotected never drops");
    assert!(
        breach.classes.iter().any(|c| !c.attained),
        "unprotected run must breach: p99 {} vs target {}",
        breach.classes[0].latency.p99_ticks,
        breach.classes[0].target_p99_ticks
    );
    assert!(
        breach.latency.p99_ticks > r.latency.p99_ticks,
        "protection must cut the tail ({} vs {})",
        r.latency.p99_ticks,
        breach.latency.p99_ticks
    );
}

#[test]
fn chaos_artifacts_replay_byte_identically() {
    for protected in [true, false] {
        let a = serve::simulate(&config(protected), workload()).expect("first run");
        let b = serve::simulate(&config(protected), workload()).expect("second run");
        assert_eq!(
            serde_json::to_string_pretty(&a).unwrap(),
            serde_json::to_string_pretty(&b).unwrap(),
            "protected={protected} replay diverged"
        );
    }
}

//! End-to-end supervision tests against a scripted stand-in worker.
//!
//! The daemon only sees the worker *protocol* (grid one-shot + JSONL
//! over stdin/stdout), so a `/bin/sh` script makes every failure mode
//! deterministic: a worker that completes cells, one that goes silent
//! mid-lease (heartbeat expiry → crash migration), fleets below the
//! floor (shedding). Timing margins are generous for slow CI boxes.

#![cfg(unix)]

use std::os::unix::fs::PermissionsExt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use checkpoint::manifest::{Journal, JournalHeader, JournalRecord};
use checkpoint::FORMAT_VERSION;
use sweepd::{parse_manifest, CancelError, Daemon, DaemonConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweepd-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes an executable worker script. `cell_logic` is the shell `case`
/// body handling `run` commands (the command line is in `$line`).
fn write_worker_script(dir: &Path, cell_logic: &str) -> PathBuf {
    let path = dir.join("fake-worker.sh");
    let script = format!(
        r#"#!/bin/sh
if [ "$1" = "--grid" ]; then
  printf '%s\n' '{{"experiment":"faults","sweep_hash":77,"seed":42,"cells":[{{"key":"a","hash":1}},{{"key":"b","hash":2}}]}}'
  exit 0
fi
if [ "$1" != "--worker" ]; then
  exit 0
fi
printf '%s\n' '{{"ev":"ready","pid":0}}'
( while :; do printf '%s\n' '{{"ev":"hb","seq":0}}'; sleep 0.05; done ) &
HB=$!
trap 'kill $HB 2>/dev/null' EXIT
trap 'kill $HB 2>/dev/null; exit 3' TERM INT
while read -r line; do
  case "$line" in
    *'"op":"exit"'*) exit 0 ;;
{cell_logic}
  esac
done
exit 0
"#
    );
    std::fs::write(&path, script).unwrap();
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).unwrap();
    path
}

fn config(dir: &Path, script: &Path) -> DaemonConfig {
    let mut cfg = DaemonConfig::new(
        vec!["/bin/sh".to_string(), script.display().to_string()],
        dir.join("state"),
    );
    cfg.heartbeat_deadline = Duration::from_millis(600);
    cfg.heartbeat_ms = 50;
    cfg.backoff_base_ms = 10;
    cfg.backoff_cap_ms = 100;
    cfg
}

/// Ticks the daemon until `pred` holds or the deadline passes.
fn tick_until(daemon: &Daemon, what: &str, pred: impl Fn(&Daemon) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        daemon.tick();
        if pred(daemon) {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for: {what}");
}

fn journal_records(state_dir: &Path, sweep_id: u64) -> Vec<JournalRecord> {
    let path = state_dir
        .join(format!("sweep-{sweep_id}"))
        .join("faults.manifest.jsonl");
    let header = JournalHeader {
        version: FORMAT_VERSION,
        config_hash: 77,
        seed: 42,
    };
    let (_, records) = Journal::open_resume_records(&path, &header).expect("journal parses");
    records
}

#[test]
fn sweep_runs_to_completion_with_leases_journaled() {
    let dir = scratch("complete");
    let script = write_worker_script(
        &dir,
        r#"    *'"key":"a"'*) printf '%s\n' '{"ev":"done","key":"a","hash":1,"result":"{\"v\":1}"}' ;;
    *'"key":"b"'*) printf '%s\n' '{"ev":"done","key":"b","hash":2,"result":"{\"v\":2}"}' ;;"#,
    );
    let cfg = config(&dir, &script);
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::new(cfg);

    let manifest = parse_manifest(br#"{"experiment":"faults","finalize":false}"#).unwrap();
    let id = daemon.submit(manifest).expect("submit");
    tick_until(&daemon, "sweep done", |d| {
        d.sweep_views()
            .iter()
            .any(|v| v.id == id && v.status == "done")
    });

    let (view, cells) = daemon.sweep_detail(id).expect("detail");
    assert_eq!(view.done, 2);
    assert_eq!(view.failed, 0);
    assert!(cells.iter().all(|c| c.status == "done"));

    // The journal holds a lease per cell and both completions, and
    // resumes cleanly (leases compact away; completions replay).
    let records = journal_records(&state_dir, id);
    let leases: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Lease(l) => Some(l.key.clone()),
            _ => None,
        })
        .collect();
    let mut done: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Cell(c) => Some((c.key.clone(), c.result_json.clone())),
            _ => None,
        })
        .collect();
    done.sort();
    assert_eq!(leases, vec!["a".to_string(), "b".to_string()]);
    assert_eq!(
        done,
        vec![
            ("a".to_string(), "{\"v\":1}".to_string()),
            ("b".to_string(), "{\"v\":2}".to_string()),
        ]
    );

    daemon.begin_drain();
    tick_until(&daemon, "fleet drained", |d| d.alive_workers() == 0);
    assert!(!daemon.unfinished());
}

#[test]
fn dead_worker_is_detected_and_cell_migrates() {
    let dir = scratch("migrate");
    // Cell "b" hangs silently (kills its own heartbeat) on the first
    // attempt; the marker file makes the retried lease succeed.
    let marker = dir.join("b-attempted");
    let cell_logic = format!(
        r#"    *'"key":"a"'*) printf '%s\n' '{{"ev":"done","key":"a","hash":1,"result":"{{\"v\":1}}"}}' ;;
    *'"key":"b"'*)
      if [ -e {marker} ]; then
        printf '%s\n' '{{"ev":"done","key":"b","hash":2,"result":"{{\"v\":2}}"}}'
      else
        : > {marker}
        kill $HB 2>/dev/null
        sleep 60
      fi ;;"#,
        marker = marker.display()
    );
    let script = write_worker_script(&dir, &cell_logic);
    let cfg = config(&dir, &script);
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::new(cfg);

    let manifest = parse_manifest(br#"{"experiment":"faults","finalize":false}"#).unwrap();
    let id = daemon.submit(manifest).expect("submit");
    tick_until(&daemon, "sweep done after migration", |d| {
        d.sweep_views()
            .iter()
            .any(|v| v.id == id && v.status == "done")
    });

    // The journal tells the whole story: cell "b" leased twice
    // (attempts 0 and 1), one failed attempt naming the heartbeat
    // expiry, and exactly one completion per cell.
    let records = journal_records(&state_dir, id);
    let b_leases: Vec<(u32, String)> = records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Lease(l) if l.key == "b" => Some((l.attempt, l.worker.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(
        b_leases.iter().map(|(a, _)| *a).collect::<Vec<_>>(),
        vec![0, 1],
        "cell b must be re-leased once: {b_leases:?}"
    );
    assert_ne!(
        b_leases[0].1, b_leases[1].1,
        "the retry must migrate to the surviving worker: {b_leases:?}"
    );
    let fails: Vec<String> = records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Failed(f) => Some(f.error.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(fails.len(), 1, "exactly one failed attempt: {fails:?}");
    assert!(
        fails[0].contains("heartbeat expired"),
        "failure must name the heartbeat: {}",
        fails[0]
    );
    let done_count = records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Cell(_)))
        .count();
    assert_eq!(done_count, 2);

    daemon.begin_drain();
    tick_until(&daemon, "fleet drained", |d| d.alive_workers() == 0);
}

#[test]
fn fleet_below_floor_sheds_lowest_priority_sweep() {
    let dir = scratch("shed");
    let script = write_worker_script(
        &dir,
        r#"    *'"key":"a"'*) printf '%s\n' '{"ev":"done","key":"a","hash":1,"result":"{\"v\":1}"}' ;;
    *'"key":"b"'*) printf '%s\n' '{"ev":"done","key":"b","hash":2,"result":"{\"v\":2}"}' ;;"#,
    );
    let mut cfg = config(&dir, &script);
    cfg.workers = 1;
    cfg.fleet_floor = 2; // unmeetable: degradation is permanent
    let daemon = Daemon::new(cfg);

    let low = daemon
        .submit(
            parse_manifest(br#"{"experiment":"faults","priority":1,"finalize":false}"#).unwrap(),
        )
        .expect("submit low");
    let high = daemon
        .submit(
            parse_manifest(br#"{"experiment":"faults","priority":5,"finalize":false}"#).unwrap(),
        )
        .expect("submit high");

    tick_until(&daemon, "low-priority sweep shed", |d| {
        d.sweep_views()
            .iter()
            .any(|v| v.id == low && v.status == "shed")
    });
    let views = daemon.sweep_views();
    let low_view = views.iter().find(|v| v.id == low).unwrap();
    assert!(
        low_view.detail.contains("fleet degradation"),
        "shed reason must be structured: {:?}",
        low_view.detail
    );

    // The surviving sweep still completes on the degraded fleet.
    tick_until(&daemon, "high-priority sweep done", |d| {
        d.sweep_views()
            .iter()
            .any(|v| v.id == high && v.status == "done")
    });

    daemon.begin_drain();
    tick_until(&daemon, "fleet drained", |d| d.alive_workers() == 0);
    assert!(!daemon.unfinished());
}

/// One raw HTTP exchange against the server (one request per
/// connection, so each call dials fresh).
fn http(addr: std::net::SocketAddr, request: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

#[test]
fn http_control_plane_round_trips() {
    let dir = scratch("http");
    let script = write_worker_script(
        &dir,
        r#"    *'"key":"a"'*) printf '%s\n' '{"ev":"done","key":"a","hash":1,"result":"{\"v\":1}"}' ;;
    *'"key":"b"'*) printf '%s\n' '{"ev":"done","key":"b","hash":2,"result":"{\"v\":2}"}' ;;"#,
    );
    let daemon = Daemon::new(config(&dir, &script));

    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    {
        let daemon = std::sync::Arc::clone(&daemon);
        std::thread::spawn(move || {
            sweepd::server::serve(&daemon, "127.0.0.1:0", move |addr| {
                addr_tx.send(addr).unwrap();
            })
            .expect("serve");
        });
    }
    let addr = addr_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("server bound");
    {
        let daemon = std::sync::Arc::clone(&daemon);
        std::thread::spawn(move || {
            while !(daemon.draining() && daemon.alive_workers() == 0) {
                daemon.tick();
                std::thread::sleep(Duration::from_millis(20));
            }
        });
    }

    // Malformed manifest → structured 400 naming the field.
    let bad = http(
        addr,
        "POST /sweeps HTTP/1.1\r\nContent-Length: 20\r\n\r\n{\"experiment\":\"no\"}x",
    );
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

    // Valid manifest → 201 with the sweep id.
    let body = r#"{"experiment":"faults","finalize":false}"#;
    let created = http(
        addr,
        &format!(
            "POST /sweeps HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(created.starts_with("HTTP/1.1 201"), "{created}");
    assert!(created.contains("{\"id\":1}"), "{created}");

    // Progress streams from GET /sweeps/1 until done.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = http(addr, "GET /sweeps/1 HTTP/1.1\r\n\r\n");
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        if status.contains("\"status\":\"done\"") {
            break;
        }
        assert!(Instant::now() < deadline, "sweep never finished: {status}");
        std::thread::sleep(Duration::from_millis(50));
    }

    let health = http(addr, "GET /healthz HTTP/1.1\r\n\r\n");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(http(addr, "GET /sweeps/99 HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 404"));

    // Cancel routes: a finished sweep is terminal (409 naming the
    // state), an unknown id is 404.
    let conflict = http(addr, "POST /sweeps/1/cancel HTTP/1.1\r\n\r\n");
    assert!(conflict.starts_with("HTTP/1.1 409"), "{conflict}");
    assert!(conflict.contains("already done"), "{conflict}");
    assert!(http(addr, "POST /sweeps/99/cancel HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 404"));

    // Shutdown drains and the accept loop winds down.
    let bye = http(addr, "POST /shutdown HTTP/1.1\r\n\r\n");
    assert!(bye.starts_with("HTTP/1.1 202"), "{bye}");
    tick_until(&daemon, "fleet drained", |d| d.alive_workers() == 0);
    assert!(!daemon.unfinished());
}

#[test]
fn cancel_revokes_leases_and_collects_inflight_checkpoints() {
    let dir = scratch("cancel");
    // Cell "a" completes; cell "b" runs forever (with heartbeats), so
    // only a cancel can end the sweep.
    let script = write_worker_script(
        &dir,
        r#"    *'"key":"a"'*) printf '%s\n' '{"ev":"done","key":"a","hash":1,"result":"{\"v\":1}"}' ;;
    *'"key":"b"'*) sleep 60 & wait $! ;;"#,
    );
    let cfg = config(&dir, &script);
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::new(cfg);

    let manifest = parse_manifest(br#"{"experiment":"faults","finalize":false}"#).unwrap();
    let id = daemon.submit(manifest).expect("submit");
    tick_until(&daemon, "cell b leased", |d| {
        d.sweep_detail(id)
            .is_some_and(|(_, cells)| cells.iter().any(|c| c.key == "b" && c.status == "leased"))
    });

    // Plant an orphaned in-flight checkpoint, as a worker killed
    // mid-cell would leave behind.
    let sweep_dir = state_dir.join(format!("sweep-{id}"));
    let orphan = sweep_dir.join("inflight-b.ckpt");
    std::fs::write(&orphan, b"{}").unwrap();

    assert_eq!(daemon.cancel(id), Ok(true));
    assert_eq!(daemon.cancel(id), Ok(false), "second cancel is idempotent");
    assert_eq!(daemon.cancel(99), Err(CancelError::NotFound));

    assert!(
        !orphan.exists(),
        "cancel must gc orphaned inflight checkpoints"
    );
    let (view, cells) = daemon.sweep_detail(id).expect("detail");
    assert_eq!(view.status, "cancelled");
    assert!(
        cells.iter().all(|c| c.status != "leased"),
        "cancel must revoke every lease: {cells:?}"
    );
    assert!(
        daemon.worker_views().iter().all(|w| w.lease.is_empty()),
        "workers must not report revoked leases"
    );

    daemon.begin_drain();
    tick_until(&daemon, "fleet drained", |d| d.alive_workers() == 0);
    assert!(
        !daemon.unfinished(),
        "a cancelled sweep is not resumable work"
    );
}

#[test]
fn leased_cell_past_wall_clock_budget_is_charged_and_retried() {
    let dir = scratch("timeout");
    // Cell "b" keeps heartbeating but never finishes on the first
    // attempt — only the wall-clock budget can unwedge it.
    let marker = dir.join("b-slow-attempted");
    let cell_logic = format!(
        r#"    *'"key":"a"'*) printf '%s\n' '{{"ev":"done","key":"a","hash":1,"result":"{{\"v\":1}}"}}' ;;
    *'"key":"b"'*)
      if [ -e {marker} ]; then
        printf '%s\n' '{{"ev":"done","key":"b","hash":2,"result":"{{\"v\":2}}"}}'
      else
        : > {marker}
        sleep 60 & wait $!
      fi ;;"#,
        marker = marker.display()
    );
    let script = write_worker_script(&dir, &cell_logic);
    let cfg = config(&dir, &script);
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::new(cfg);

    let manifest =
        parse_manifest(br#"{"experiment":"faults","cell_timeout_s":1,"finalize":false}"#).unwrap();
    let id = daemon.submit(manifest).expect("submit");
    tick_until(&daemon, "sweep done after cell timeout", |d| {
        d.sweep_views()
            .iter()
            .any(|v| v.id == id && v.status == "done")
    });

    let records = journal_records(&state_dir, id);
    let fails: Vec<String> = records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Failed(f) if f.key == "b" => Some(f.error.clone()),
            _ => None,
        })
        .collect();
    assert!(
        fails.iter().any(|e| e.contains("wall-clock budget")),
        "timeout must be journaled with a structured reason: {fails:?}"
    );

    daemon.begin_drain();
    tick_until(&daemon, "fleet drained", |d| d.alive_workers() == 0);
}

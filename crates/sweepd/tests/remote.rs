//! End-to-end tests for TCP remote workers: registration handshake,
//! lease fencing, heartbeat-driven migration of a partitioned worker,
//! and reconnect-with-resume. The "worker" here is an in-process fake
//! speaking the wire protocol directly, so every network event (silence,
//! disconnect, stale completion) is scripted rather than emergent.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use checkpoint::manifest::{Journal, JournalHeader, JournalRecord};
use checkpoint::FORMAT_VERSION;
use serde::value::Value;
use sweepd::{parse_manifest, remote, wire, Daemon, DaemonConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweepd-remote-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes the grid-only stand-in for the experiments binary: remote
/// fleets still need `--grid` locally to enumerate cells.
fn write_grid_script(dir: &Path) -> PathBuf {
    let path = dir.join("fake-grid.sh");
    let script = r#"#!/bin/sh
if [ "$1" = "--grid" ]; then
  printf '%s\n' '{"experiment":"faults","sweep_hash":77,"seed":42,"cells":[{"key":"a","hash":1},{"key":"b","hash":2}]}'
  exit 0
fi
exit 0
"#;
    std::fs::write(&path, script).unwrap();
    use std::os::unix::fs::PermissionsExt;
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).unwrap();
    path
}

/// Remote-only fleet: zero local slots, every worker joins over TCP.
fn config(dir: &Path) -> DaemonConfig {
    let script = write_grid_script(dir);
    let mut cfg = DaemonConfig::new(
        vec!["/bin/sh".to_string(), script.display().to_string()],
        dir.join("state"),
    );
    cfg.workers = 0;
    cfg.heartbeat_deadline = Duration::from_millis(600);
    cfg.heartbeat_ms = 50;
    cfg.backoff_base_ms = 10;
    cfg.backoff_cap_ms = 100;
    cfg
}

/// Starts the worker listener plus a background ticker; returns the
/// bound address.
fn start(daemon: &Arc<Daemon>) -> SocketAddr {
    let (addr_tx, addr_rx) = mpsc::channel();
    {
        let daemon = Arc::clone(daemon);
        std::thread::spawn(move || {
            remote::serve_workers(daemon, "127.0.0.1:0", move |addr| {
                addr_tx.send(addr).unwrap();
            })
            .expect("worker listener");
        });
    }
    {
        let daemon = Arc::clone(daemon);
        std::thread::spawn(move || {
            while !(daemon.draining() && daemon.alive_workers() == 0) {
                daemon.tick();
                std::thread::sleep(Duration::from_millis(20));
            }
        });
    }
    addr_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("listener bound")
}

/// Dials the coordinator and completes the handshake; returns the
/// stream, a buffered reader over its clone, and the parsed reply.
fn dial(addr: SocketAddr, token: &str, worker: &str, proto: u32, fp: u64) -> Conn {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let hello = wire::Hello {
        proto,
        fingerprint: fp,
        token: token.to_string(),
        worker: worker.to_string(),
    };
    stream
        .write_all(wire::render_hello(&hello).as_bytes())
        .unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("handshake reply");
    let reply = wire::parse_reply(line.trim_end()).expect("reply parses");
    Conn {
        stream,
        reader,
        reply,
    }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    reply: wire::HandshakeReply,
}

impl Conn {
    fn welcome(&self) -> (String, u64, Option<String>) {
        match &self.reply {
            wire::HandshakeReply::Welcome {
                session,
                gen,
                resume,
                ..
            } => (session.clone(), *gen, resume.clone()),
            wire::HandshakeReply::Reject { reason } => panic!("rejected: {reason}"),
        }
    }

    /// Spawns a heartbeat thread over a clone of the stream; returns
    /// its stop flag (the thread also exits on write failure).
    fn start_heartbeats(&self) -> Arc<AtomicBool> {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let mut hb = self.stream.try_clone().unwrap();
        std::thread::spawn(move || {
            let mut seq = 0u64;
            while !flag.load(Ordering::Relaxed) {
                let frame = format!("{{\"ev\":\"hb\",\"seq\":{seq}}}\n");
                if hb
                    .write_all(frame.as_bytes())
                    .and_then(|()| hb.flush())
                    .is_err()
                {
                    return;
                }
                seq += 1;
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        stop
    }

    /// Blocks until the next `run` command; returns `(key, fence gen)`.
    fn next_run(&mut self) -> (String, u64) {
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut line = String::new();
        while Instant::now() < deadline {
            line.clear();
            if self.reader.read_line(&mut line).expect("read command") == 0 {
                panic!("coordinator closed the stream while waiting for a run");
            }
            if let Some(run) = parse_run(&line) {
                return run;
            }
        }
        panic!("timed out waiting for a run command");
    }

    fn send_done(&mut self, key: &str, gen: u64) {
        let hash = if key == "a" { 1 } else { 2 };
        let frame = format!(
            "{{\"ev\":\"done\",\"key\":\"{key}\",\"hash\":{hash},\"result\":\"{{\\\"v\\\":{hash}}}\",\"gen\":{gen}}}\n"
        );
        self.stream.write_all(frame.as_bytes()).unwrap();
        self.stream.flush().unwrap();
    }

    /// Serves until the coordinator sends `exit`, completing every run
    /// with the echoed fence generation. Shuts the socket down on the
    /// way out so the heartbeat thread's clone cannot hold it open.
    fn serve_until_exit(&mut self) {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            if line.contains("\"op\":\"exit\"") {
                break;
            }
            if let Some((key, gen)) = parse_run(&line) {
                self.send_done(&key, gen);
            }
        }
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

fn parse_run(line: &str) -> Option<(String, u64)> {
    let v: Value = serde_json::from_str(line.trim_end()).ok()?;
    if v.get("op").and_then(Value::as_str) != Some("run") {
        return None;
    }
    // Remote run commands are self-contained: the sweep context rides
    // along instead of arriving in a separate bind frame.
    let dir = v.get("dir").and_then(Value::as_str)?;
    assert!(!dir.is_empty(), "run must carry the sweep dir");
    assert_eq!(v.get("seed").and_then(Value::as_u64), Some(42));
    assert!(v.get("ckpt_interval").and_then(Value::as_u64).is_some());
    let key = v.get("key").and_then(Value::as_str)?.to_string();
    let gen = v.get("gen").and_then(Value::as_u64)?;
    Some((key, gen))
}

fn tick_wait(daemon: &Daemon, what: &str, pred: impl Fn(&Daemon) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if pred(daemon) {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for: {what}");
}

fn journal_records(state_dir: &Path, sweep_id: u64) -> Vec<JournalRecord> {
    let path = state_dir
        .join(format!("sweep-{sweep_id}"))
        .join("faults.manifest.jsonl");
    let header = JournalHeader {
        version: FORMAT_VERSION,
        config_hash: 77,
        seed: 42,
    };
    let (_, records) = Journal::open_resume_records(&path, &header).expect("journal parses");
    records
}

fn good_fp() -> u64 {
    wire::fingerprint(sweepd::manifest::SUPPORTED_EXPERIMENTS)
}

#[test]
fn remote_worker_registers_and_completes_sweep() {
    let dir = scratch("complete");
    let cfg = config(&dir);
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::new(cfg);
    let addr = start(&daemon);

    let id = daemon
        .submit(parse_manifest(br#"{"experiment":"faults","finalize":false}"#).unwrap())
        .expect("submit");

    let mut conn = dial(addr, "", "w-remote-1", wire::PROTO_VERSION, good_fp());
    let (session, gen, resume) = conn.welcome();
    assert!(!session.is_empty());
    assert_eq!(gen, 0, "fresh registration starts at generation 0");
    assert_eq!(resume, None);
    let hb = conn.start_heartbeats();
    let server = std::thread::spawn(move || conn.serve_until_exit());

    tick_wait(&daemon, "sweep done", |d| {
        d.sweep_views()
            .iter()
            .any(|v| v.id == id && v.status == "done")
    });
    let (view, cells) = daemon.sweep_detail(id).expect("detail");
    assert_eq!(view.done, 2);
    assert_eq!(view.failed, 0);
    assert!(cells.iter().all(|c| c.status == "done"));

    let workers = daemon.worker_views();
    assert_eq!(workers.len(), 1, "remote-only fleet: {workers:?}");
    assert_eq!(workers[0].kind, "remote");
    assert_eq!(workers[0].pid, 0, "remote slots have no local pid");
    assert_eq!(
        workers[0].name, "w-remote-1",
        "healthz reports the self-reported worker identity"
    );

    // Every lease and completion is fence-tagged with the same
    // nonzero generation, and leases name the worker's self-reported
    // identity.
    let records = journal_records(&state_dir, id);
    let mut lease_gens = std::collections::BTreeMap::new();
    for r in &records {
        if let JournalRecord::Lease(l) = r {
            assert_eq!(l.worker, "w-remote-1");
            let g = l.gen.expect("remote leases are fence-tagged");
            assert!(g > 0, "fence generations start at 1");
            lease_gens.insert(l.key.clone(), g);
        }
    }
    assert_eq!(lease_gens.len(), 2);
    for r in &records {
        if let JournalRecord::Cell(c) = r {
            assert_eq!(
                c.gen,
                Some(lease_gens[&c.key]),
                "completion echoes its lease fence"
            );
        }
    }

    daemon.begin_drain();
    tick_wait(&daemon, "fleet drained", |d| d.alive_workers() == 0);
    assert!(!daemon.unfinished());
    hb.store(true, Ordering::Relaxed);
    server.join().unwrap();
}

#[test]
fn handshake_rejects_version_and_fingerprint_mismatches() {
    let dir = scratch("reject");
    let daemon = Daemon::new(config(&dir));
    let addr = start(&daemon);

    let conn = dial(addr, "", "w-old", wire::PROTO_VERSION + 1, good_fp());
    match &conn.reply {
        wire::HandshakeReply::Reject { reason } => {
            assert!(reason.contains("protocol version mismatch"), "{reason}");
        }
        other => panic!("version skew must be rejected, got {other:?}"),
    }

    let conn = dial(addr, "", "w-skewed", wire::PROTO_VERSION, good_fp() ^ 1);
    match &conn.reply {
        wire::HandshakeReply::Reject { reason } => {
            assert!(reason.contains("fingerprint mismatch"), "{reason}");
        }
        other => panic!("config skew must be rejected, got {other:?}"),
    }

    assert_eq!(
        daemon.worker_views().len(),
        0,
        "rejected dials leave no slots"
    );
    daemon.begin_drain();
}

#[test]
fn partitioned_remote_worker_expires_and_cell_migrates() {
    let dir = scratch("partition");
    let cfg = config(&dir);
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::new(cfg);
    let addr = start(&daemon);

    let id = daemon
        .submit(parse_manifest(br#"{"experiment":"faults","finalize":false}"#).unwrap())
        .expect("submit");

    // W1 takes a lease, then partitions: heartbeats stop, the socket
    // stays open. Only the heartbeat deadline can detect this.
    let mut w1 = dial(addr, "", "w-r1", wire::PROTO_VERSION, good_fp());
    let w1_hb = w1.start_heartbeats();
    let (k1, g1) = w1.next_run();
    w1_hb.store(true, Ordering::Relaxed);

    let mut w2 = dial(addr, "", "w-r2", wire::PROTO_VERSION, good_fp());
    let _w2_hb = w2.start_heartbeats();
    let (k2, g2) = w2.next_run();
    assert_ne!(k1, k2);
    w2.send_done(&k2, g2);

    // The deadline fires, W1's lease migrates, and W2 (idle, already
    // bound to the sweep) picks the cell up on the next tick.
    let (k1_retry, g1_retry) = w2.next_run();
    assert_eq!(k1_retry, k1, "the partitioned worker's cell must migrate");
    assert!(g1_retry > g1, "the re-lease must carry a newer fence");
    w2.send_done(&k1, g1_retry);

    tick_wait(&daemon, "sweep done after migration", |d| {
        d.sweep_views()
            .iter()
            .any(|v| v.id == id && v.status == "done")
    });

    // The healed partition's stale completion must change nothing: its
    // slot is gone and its fence generation is superseded.
    w1.send_done(&k1, g1);
    std::thread::sleep(Duration::from_millis(200));

    let records = journal_records(&state_dir, id);
    let k1_leases: Vec<(u32, String)> = records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Lease(l) if l.key == k1 => Some((l.attempt, l.worker.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(
        k1_leases.iter().map(|(a, _)| *a).collect::<Vec<_>>(),
        vec![0, 1],
        "cell must be re-leased exactly once: {k1_leases:?}"
    );
    assert_eq!(k1_leases[0].1, "w-r1");
    assert_eq!(k1_leases[1].1, "w-r2");
    let fails: Vec<String> = records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Failed(f) => Some(f.error.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(fails.len(), 1, "exactly one charged attempt: {fails:?}");
    assert!(fails[0].contains("heartbeat expired"), "{}", fails[0]);
    let done = records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Cell(_)))
        .count();
    assert_eq!(
        done, 2,
        "the stale completion must not append a third record"
    );

    daemon.begin_drain();
    let server = std::thread::spawn(move || w2.serve_until_exit());
    tick_wait(&daemon, "fleet drained", |d| d.alive_workers() == 0);
    assert!(!daemon.unfinished());
    server.join().unwrap();
}

#[test]
fn reconnect_resumes_lease_and_fences_stale_generations() {
    let dir = scratch("resume");
    let mut cfg = config(&dir);
    // Generous deadline: the redial must comfortably win the race
    // against heartbeat expiry (the deadline doubles as the grace
    // window for exactly this reconnect).
    cfg.heartbeat_deadline = Duration::from_secs(5);
    let state_dir = cfg.state_dir.clone();
    let daemon = Daemon::new(cfg);
    let addr = start(&daemon);

    let id = daemon
        .submit(parse_manifest(br#"{"experiment":"faults","finalize":false}"#).unwrap())
        .expect("submit");

    // First connection: register, take a lease, then lose the link
    // before completing (the done frame is "lost in flight").
    let mut conn = dial(addr, "", "w-re", wire::PROTO_VERSION, good_fp());
    let (token, gen0, _) = conn.welcome();
    assert_eq!(gen0, 0);
    let hb1 = conn.start_heartbeats();
    let (k1, g1) = conn.next_run();
    hb1.store(true, Ordering::Relaxed);
    conn.stream.shutdown(Shutdown::Both).unwrap();
    drop(conn);

    // Redial with the session token: same slot, bumped generation,
    // and the welcome names the still-held lease.
    let mut conn = dial(addr, &token, "w-re", wire::PROTO_VERSION, good_fp());
    let (session, gen, resume) = conn.welcome();
    assert_eq!(session, token, "resume keeps the session token");
    assert_eq!(gen, 1, "each reconnect bumps the link generation");
    assert_eq!(
        resume.as_deref(),
        Some(k1.as_str()),
        "welcome names the held lease"
    );
    let _hb2 = conn.start_heartbeats();

    // A completion echoing the wrong fence generation is dropped and
    // the lease survives.
    conn.send_done(&k1, g1 + 999);
    std::thread::sleep(Duration::from_millis(300));
    let (view, cells) = daemon.sweep_detail(id).expect("detail");
    assert_eq!(view.done, 0, "fenced completion must not land");
    let cell = cells.iter().find(|c| c.key == k1).unwrap();
    assert_eq!(cell.status, "leased", "the fenced lease must survive");

    // Re-sending with the original fence completes the cell, and the
    // worker then finishes the rest of the sweep over the new link.
    conn.send_done(&k1, g1);
    let (k2, g2) = conn.next_run();
    assert_ne!(k2, k1);
    conn.send_done(&k2, g2);
    tick_wait(&daemon, "sweep done after resume", |d| {
        d.sweep_views()
            .iter()
            .any(|v| v.id == id && v.status == "done")
    });

    // One slot for the whole story: the redial re-attached instead of
    // registering a second worker.
    let workers = daemon.worker_views();
    assert_eq!(workers.len(), 1, "{workers:?}");
    assert_eq!(workers[0].kind, "remote");
    assert_eq!(workers[0].restarts, 1, "resume counts as a re-attach");

    // No attempt was ever charged: the disconnect stayed within the
    // grace window and the fenced frame is not a failure.
    let records = journal_records(&state_dir, id);
    assert!(
        !records
            .iter()
            .any(|r| matches!(r, JournalRecord::Failed(_))),
        "no failures expected: {records:?}"
    );
    let leases = records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Lease(_)))
        .count();
    assert_eq!(leases, 2, "one lease per cell, none re-leased");

    daemon.begin_drain();
    let server = std::thread::spawn(move || conn.serve_until_exit());
    tick_wait(&daemon, "fleet drained", |d| d.alive_workers() == 0);
    assert!(!daemon.unfinished());
    server.join().unwrap();
}

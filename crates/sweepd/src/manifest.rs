//! Sweep manifests: the JSON body of `POST /sweeps`.
//!
//! A manifest names an experiment and its execution policy. Parsing is
//! manual over the JSON tree (rather than a derive) so every rejection
//! carries a field-level reason the client gets back verbatim in the
//! 400 body — a fuzzer-grade input boundary, like the HTTP parser in
//! front of it.
//!
//! ```json
//! {
//!   "experiment": "faults",
//!   "seed": 7,
//!   "priority": 10,
//!   "cell_timeout_s": 300,
//!   "retry_budget": 2,
//!   "finalize": true
//! }
//! ```
//!
//! Only `experiment` is required; the rest default as documented on
//! [`SweepManifest`].

use serde::value::Value;

/// Experiments the worker fleet knows how to shard. Mirrors the
/// dispatch table in the experiments binary's worker mode.
pub const SUPPORTED_EXPERIMENTS: &[&str] = &["faults"];

/// A validated sweep request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepManifest {
    /// Experiment to sweep; must be in [`SUPPORTED_EXPERIMENTS`].
    pub experiment: String,
    /// Seed for the sweep (default 42).
    pub seed: u64,
    /// Scheduling priority; higher runs first, and under fleet
    /// degradation the lowest-priority sweeps are shed first
    /// (default 0).
    pub priority: i64,
    /// Per-cell wall-clock budget in seconds; a leased cell past the
    /// budget is cancelled and the attempt journaled as failed
    /// (default: the daemon's `--cell-timeout`, or unbounded).
    pub cell_timeout_s: Option<u64>,
    /// How many failed attempts a cell may accumulate before the sweep
    /// fails (default: the daemon's `--retry-budget`).
    pub retry_budget: Option<u32>,
    /// Whether to run the single-process resume pass after the last
    /// cell, producing the standard `results/` artifacts byte-identical
    /// to an uninterrupted run (default true).
    pub finalize: bool,
}

fn want_u64(v: &Value, field: &str) -> Result<u64, String> {
    v.as_u64().ok_or_else(|| {
        format!(
            "field {field:?} must be a non-negative integer, got {}",
            v.kind()
        )
    })
}

fn want_i64(v: &Value, field: &str) -> Result<i64, String> {
    match v {
        Value::Int(i) => i64::try_from(*i).map_err(|_| format!("field {field:?} out of i64 range")),
        Value::UInt(u) => {
            i64::try_from(*u).map_err(|_| format!("field {field:?} out of i64 range"))
        }
        other => Err(format!(
            "field {field:?} must be an integer, got {}",
            other.kind()
        )),
    }
}

/// Parses and validates a manifest body.
///
/// # Errors
///
/// Returns a human-readable reason (surfaced as the 400 body) for
/// non-UTF-8 or non-JSON input, a non-object root, unknown fields,
/// type mismatches, an unsupported experiment, or a zero
/// `cell_timeout_s`.
pub fn parse_manifest(body: &[u8]) -> Result<SweepManifest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "manifest body is not UTF-8".to_string())?;
    let root: Value =
        serde_json::from_str(text).map_err(|e| format!("manifest is not valid JSON: {e}"))?;
    let map = root
        .as_map()
        .ok_or_else(|| format!("manifest must be a JSON object, got {}", root.kind()))?;

    let mut manifest = SweepManifest {
        experiment: String::new(),
        seed: 42,
        priority: 0,
        cell_timeout_s: None,
        retry_budget: None,
        finalize: true,
    };
    for (key, value) in map {
        match key.as_str() {
            "experiment" => {
                manifest.experiment = value
                    .as_str()
                    .ok_or_else(|| {
                        format!(
                            "field \"experiment\" must be a string, got {}",
                            value.kind()
                        )
                    })?
                    .to_string();
            }
            "seed" => manifest.seed = want_u64(value, "seed")?,
            "priority" => manifest.priority = want_i64(value, "priority")?,
            "cell_timeout_s" => {
                let secs = want_u64(value, "cell_timeout_s")?;
                if secs == 0 {
                    return Err("field \"cell_timeout_s\" must be positive".into());
                }
                manifest.cell_timeout_s = Some(secs);
            }
            "retry_budget" => {
                let n = want_u64(value, "retry_budget")?;
                let n = u32::try_from(n)
                    .map_err(|_| "field \"retry_budget\" out of u32 range".to_string())?;
                manifest.retry_budget = Some(n);
            }
            "finalize" => {
                manifest.finalize = value.as_bool().ok_or_else(|| {
                    format!("field \"finalize\" must be a boolean, got {}", value.kind())
                })?;
            }
            unknown => return Err(format!("unknown manifest field {unknown:?}")),
        }
    }
    if manifest.experiment.is_empty() {
        return Err("manifest is missing required field \"experiment\"".into());
    }
    if !SUPPORTED_EXPERIMENTS.contains(&manifest.experiment.as_str()) {
        return Err(format!(
            "experiment {:?} has no distributed cell API (supported: {})",
            manifest.experiment,
            SUPPORTED_EXPERIMENTS.join(", ")
        ));
    }
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_manifest_gets_defaults() {
        let m = parse_manifest(b"{\"experiment\":\"faults\"}").expect("parse");
        assert_eq!(m.experiment, "faults");
        assert_eq!(m.seed, 42);
        assert_eq!(m.priority, 0);
        assert_eq!(m.cell_timeout_s, None);
        assert_eq!(m.retry_budget, None);
        assert!(m.finalize);
    }

    #[test]
    fn full_manifest_round_trips() {
        let m = parse_manifest(
            br#"{"experiment":"faults","seed":7,"priority":-3,"cell_timeout_s":120,"retry_budget":1,"finalize":false}"#,
        )
        .expect("parse");
        assert_eq!(m.seed, 7);
        assert_eq!(m.priority, -3);
        assert_eq!(m.cell_timeout_s, Some(120));
        assert_eq!(m.retry_budget, Some(1));
        assert!(!m.finalize);
    }

    #[test]
    fn rejections_name_the_field() {
        for (body, needle) in [
            (&b"not json"[..], "not valid JSON"),
            (b"[1,2]", "must be a JSON object"),
            (b"{}", "missing required field"),
            (b"{\"experiment\":\"nope\"}", "no distributed cell API"),
            (b"{\"experiment\":7}", "\"experiment\" must be a string"),
            (b"{\"experiment\":\"faults\",\"seed\":-1}", "\"seed\""),
            (
                b"{\"experiment\":\"faults\",\"cell_timeout_s\":0}",
                "positive",
            ),
            (
                b"{\"experiment\":\"faults\",\"bogus\":1}",
                "unknown manifest field",
            ),
            (b"\xff\xfe", "not UTF-8"),
        ] {
            let err = parse_manifest(body).expect_err(&format!("{body:?}"));
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }
}

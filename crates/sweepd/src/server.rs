//! The HTTP control plane: a thread-per-connection server over
//! `std::net::TcpListener` routing onto a shared [`Daemon`].
//!
//! One request per connection (`Connection: close`), bounded reads via
//! the caps in [`crate::http`], structured JSON errors for every
//! rejection. Routes:
//!
//! | Route                     | Effect                                      |
//! |---------------------------|---------------------------------------------|
//! | `POST /sweeps`            | submit a manifest → `201 {"id": n}`         |
//! | `GET /sweeps`             | all sweeps, newest first                    |
//! | `GET /sweeps/:id`         | one sweep with per-cell status              |
//! | `POST /sweeps/:id/cancel` | cancel + GC in-flight checkpoints → `202`   |
//! | `GET /healthz`            | worker-slot health (pids, leases, restarts) |
//! | `GET /metrics`            | telemetry snapshot JSON                     |
//! | `POST /shutdown`          | begin a graceful drain → `202`              |

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::daemon::Daemon;
use crate::http::{
    parse_request, render_error, render_response, HttpError, ParseStatus, Request, MAX_BODY,
};
use crate::manifest::parse_manifest;

/// Hard cap on buffered request bytes: headers + the body cap.
const MAX_REQUEST: usize = MAX_BODY + 64 * 1024;

/// Binds `addr` and serves until the daemon drains. Returns the bound
/// listener address (useful with port 0) via the callback before
/// blocking.
///
/// # Errors
///
/// Returns the bind error verbatim.
pub fn serve(
    daemon: &Arc<Daemon>,
    addr: &str,
    on_bound: impl FnOnce(std::net::SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    on_bound(listener.local_addr()?);
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let daemon = Arc::clone(daemon);
                std::thread::spawn(move || handle_connection(&daemon, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if daemon.draining() {
                    return Ok(());
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(daemon: &Arc<Daemon>, mut stream: TcpStream) {
    obs::counter_add("sweepd.http.requests", 1);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let response = loop {
        match parse_request(&buf) {
            Ok(ParseStatus::Complete { request, .. }) => break route(daemon, &request),
            Ok(ParseStatus::Incomplete) => {
                if buf.len() > MAX_REQUEST {
                    break render_error(&HttpError {
                        status: 413,
                        reason: "request exceeds buffer cap".into(),
                    });
                }
                match stream.read(&mut chunk) {
                    Ok(0) => {
                        if buf.is_empty() {
                            return; // peer connected and left
                        }
                        break render_error(&HttpError {
                            status: 400,
                            reason: "connection closed mid-request".into(),
                        });
                    }
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(_) => {
                        break render_error(&HttpError {
                            status: 400,
                            reason: "read timeout or error mid-request".into(),
                        })
                    }
                }
            }
            Err(err) => break render_error(&err),
        }
    };
    let _ = stream.write_all(&response);
    let _ = stream.flush();
}

fn json_ok(status: u16, body: String) -> Vec<u8> {
    render_response(status, "application/json", body.as_bytes())
}

fn route(daemon: &Arc<Daemon>, req: &Request) -> Vec<u8> {
    let err = |status: u16, reason: &str| {
        render_error(&HttpError {
            status,
            reason: reason.to_string(),
        })
    };
    match (req.method.as_str(), req.target.as_str()) {
        ("POST", "/sweeps") => match parse_manifest(&req.body) {
            Ok(manifest) => match daemon.submit(manifest) {
                Ok(id) => json_ok(201, format!("{{\"id\":{id}}}\n")),
                Err(reason) => err(409, &reason),
            },
            Err(reason) => err(400, &reason),
        },
        ("GET", "/sweeps") => {
            let views = daemon.sweep_views();
            let body = serde_json::to_string(&views).unwrap_or_else(|_| "[]".into());
            json_ok(200, format!("{{\"sweeps\":{body}}}\n"))
        }
        ("POST", target) if target.starts_with("/sweeps/") && target.ends_with("/cancel") => {
            let id_part = &target["/sweeps/".len()..target.len() - "/cancel".len()];
            let Ok(id) = id_part.parse::<u64>() else {
                return err(404, "sweep ids are integers");
            };
            match daemon.cancel(id) {
                // Idempotent: cancelling an already-cancelled sweep is
                // also 202, so a retried request can't fail.
                Ok(_) => json_ok(202, format!("{{\"id\":{id},\"status\":\"cancelled\"}}\n")),
                Err(crate::daemon::CancelError::NotFound) => {
                    err(404, &format!("no sweep with id {id}"))
                }
                Err(crate::daemon::CancelError::Terminal(label)) => err(
                    409,
                    &format!("sweep {id} is already {label}; nothing to cancel"),
                ),
            }
        }
        ("GET", target) if target.starts_with("/sweeps/") => {
            let Ok(id) = target["/sweeps/".len()..].parse::<u64>() else {
                return err(404, "sweep ids are integers");
            };
            match daemon.sweep_detail(id) {
                Some((view, cells)) => {
                    let view = serde_json::to_string(&view).unwrap_or_else(|_| "{}".into());
                    let cells = serde_json::to_string(&cells).unwrap_or_else(|_| "[]".into());
                    json_ok(200, format!("{{\"sweep\":{view},\"cells\":{cells}}}\n"))
                }
                None => err(404, &format!("no sweep with id {id}")),
            }
        }
        ("GET", "/healthz") => {
            let workers = daemon.worker_views();
            let body = serde_json::to_string(&workers).unwrap_or_else(|_| "[]".into());
            json_ok(
                200,
                format!(
                    "{{\"status\":\"ok\",\"draining\":{},\"workers\":{body}}}\n",
                    daemon.draining()
                ),
            )
        }
        ("GET", "/metrics") => json_ok(200, obs::snapshot_json()),
        ("POST", "/shutdown") => {
            daemon.begin_drain();
            json_ok(202, "{\"draining\":true}\n".into())
        }
        ("GET" | "POST", _) => err(404, &format!("no route for {} {}", req.method, req.target)),
        _ => err(405, &format!("method {} not allowed", req.method)),
    }
}

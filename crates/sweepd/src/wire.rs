//! Wire protocol for TCP remote workers: length-capped newline frames
//! plus the versioned registration handshake.
//!
//! A remote worker dials the coordinator's `--worker-listen` address and
//! the two sides exchange exactly one handshake frame each before the
//! ordinary JSONL worker protocol starts:
//!
//! ```text
//! worker      -> {"hello":{"proto":1,"fingerprint":F,"token":"","worker":"w-tcp-123"}}
//! coordinator -> {"welcome":{"proto":1,"session":"s1","gen":0,"resume":""}}   (accepted)
//! coordinator -> {"reject":{"reason":"..."}}                                  (refused)
//! ```
//!
//! * `proto` is [`PROTO_VERSION`]; a mismatch is rejected with a
//!   structured reason rather than garbled framing later.
//! * `fingerprint` is [`fingerprint`] over the protocol version and the
//!   experiment dispatch table, so a worker binary built against a
//!   different cell API cannot register and silently corrupt a sweep.
//! * `token` is empty on first contact. The welcome carries a session
//!   token the worker echoes when it redials; a token that still maps to
//!   a live registration re-attaches the new socket to the old slot and
//!   `resume` names the cell key the worker's lease still covers (empty
//!   if it holds none, or if the lease migrated while it was away).
//!
//! Everything here is a pure function over bytes — no sockets — so the
//! fuzz harness (`bench --bin fuzz --boundary frame`, lane 7) can drive
//! the exact code the coordinator runs, the same way `http::parse_request`
//! and the CHS1 scenario parser are fuzzed.

use serde::value::Value;

/// Handshake protocol version. Bump on any incompatible frame change.
pub const PROTO_VERSION: u32 = 1;

/// Hard cap on a single frame (one JSONL line, excluding the newline).
/// A peer that streams more than this without a newline is speaking a
/// different protocol (or attacking the buffer) and is disconnected.
pub const MAX_FRAME: usize = 64 * 1024;

/// Cap on the session token echoed back by a reconnecting worker.
pub const MAX_TOKEN: usize = 128;

/// Cap on the self-reported worker name carried in the hello.
pub const MAX_WORKER_NAME: usize = 64;

/// Why a frame or handshake message was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable reason, surfaced in reject frames and logs.
    pub reason: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for WireError {}

fn err<T>(reason: impl Into<String>) -> Result<T, WireError> {
    Err(WireError {
        reason: reason.into(),
    })
}

/// Result of scanning a receive buffer for one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStatus<'a> {
    /// A full line was found: `line` is the frame body (newline and any
    /// trailing `\r` stripped), `consumed` is how many buffer bytes it
    /// used including the terminator.
    Complete {
        /// Frame body without the line terminator.
        line: &'a str,
        /// Bytes to drain from the front of the receive buffer.
        consumed: usize,
    },
    /// No newline yet and the buffer is still under [`MAX_FRAME`]; read
    /// more bytes and try again.
    Incomplete,
}

/// Scans `buf` for one newline-terminated frame.
///
/// # Errors
///
/// Returns a [`WireError`] when the unterminated prefix already exceeds
/// [`MAX_FRAME`], or when a complete line is not valid UTF-8. Both are
/// protocol violations: the connection should be dropped, not resynced.
pub fn parse_frame(buf: &[u8]) -> Result<FrameStatus<'_>, WireError> {
    let scan = &buf[..buf.len().min(MAX_FRAME + 1)];
    match scan.iter().position(|&b| b == b'\n') {
        Some(pos) => {
            let mut body = &buf[..pos];
            if body.last() == Some(&b'\r') {
                body = &body[..body.len() - 1];
            }
            match std::str::from_utf8(body) {
                Ok(line) => Ok(FrameStatus::Complete {
                    line,
                    consumed: pos + 1,
                }),
                Err(_) => err("frame is not valid UTF-8"),
            }
        }
        None if buf.len() > MAX_FRAME => {
            err(format!("frame exceeds {MAX_FRAME} bytes without a newline"))
        }
        None => Ok(FrameStatus::Incomplete),
    }
}

/// The worker's opening handshake frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the worker speaks.
    pub proto: u32,
    /// [`fingerprint`] of the worker's cell-API dispatch table.
    pub fingerprint: u64,
    /// Session token from a previous welcome; empty on first contact.
    pub token: String,
    /// Self-reported worker name, used in lease journal records.
    pub worker: String,
}

/// The coordinator's answer to a hello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeReply {
    /// Registration accepted.
    Welcome {
        /// Coordinator's protocol version (always [`PROTO_VERSION`]).
        proto: u32,
        /// Session token to echo on reconnect.
        session: String,
        /// Slot generation assigned to this connection; the worker
        /// echoes it in done/err events so stale output can be fenced.
        gen: u64,
        /// Cell key of a lease this session still holds (reconnect
        /// resume); `None` when the worker starts idle.
        resume: Option<String>,
    },
    /// Registration refused; the coordinator closes the connection.
    Reject {
        /// Why the hello was refused.
        reason: String,
    },
}

fn want_obj<'a>(v: &'a Value, what: &str) -> Result<&'a [(String, Value)], WireError> {
    match v.as_map() {
        Some(m) => Ok(m),
        None => err(format!("{what} must be a JSON object, got {}", v.kind())),
    }
}

fn want_u64(v: &Value, what: &str) -> Result<u64, WireError> {
    match v.as_u64() {
        Some(n) => Ok(n),
        None => err(format!(
            "{what} must be a non-negative integer, got {}",
            v.kind()
        )),
    }
}

fn want_str<'a>(v: &'a Value, what: &str, cap: usize) -> Result<&'a str, WireError> {
    let s = match v.as_str() {
        Some(s) => s,
        None => return err(format!("{what} must be a string, got {}", v.kind())),
    };
    if s.len() > cap {
        return err(format!("{what} exceeds {cap} bytes"));
    }
    if s.chars().any(|c| c.is_control()) {
        return err(format!("{what} contains control characters"));
    }
    Ok(s)
}

fn field<'a>(map: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Parses a worker hello frame.
///
/// Unknown fields inside the `hello` object are tolerated (additive
/// protocol evolution); known fields are validated strictly and every
/// rejection names the offending field.
///
/// # Errors
///
/// Returns a [`WireError`] for non-JSON input, a missing or mistyped
/// `hello` envelope, missing or mistyped `proto`/`fingerprint`, an
/// out-of-range `proto`, or an over-cap / control-character `token` or
/// `worker` name.
pub fn parse_hello(line: &str) -> Result<Hello, WireError> {
    let root: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return err(format!("hello frame is not valid JSON: {e}")),
    };
    let root = want_obj(&root, "hello frame")?;
    let body = match field(root, "hello") {
        Some(v) => want_obj(v, "\"hello\"")?,
        None => return err("frame is missing the \"hello\" envelope"),
    };
    let proto = match field(body, "proto") {
        Some(v) => want_u64(v, "\"proto\"")?,
        None => return err("hello is missing \"proto\""),
    };
    let proto = match u32::try_from(proto) {
        Ok(p) => p,
        Err(_) => return err("\"proto\" out of u32 range"),
    };
    let fingerprint = match field(body, "fingerprint") {
        Some(v) => want_u64(v, "\"fingerprint\"")?,
        None => return err("hello is missing \"fingerprint\""),
    };
    let token = match field(body, "token") {
        Some(v) => want_str(v, "\"token\"", MAX_TOKEN)?.to_string(),
        None => String::new(),
    };
    let worker = match field(body, "worker") {
        Some(v) => want_str(v, "\"worker\"", MAX_WORKER_NAME)?.to_string(),
        None => return err("hello is missing \"worker\""),
    };
    if worker.is_empty() {
        return err("\"worker\" must not be empty");
    }
    Ok(Hello {
        proto,
        fingerprint,
        token,
        worker,
    })
}

/// Renders a hello frame (newline included) ready to write to a socket.
pub fn render_hello(hello: &Hello) -> String {
    format!(
        "{{\"hello\":{{\"proto\":{},\"fingerprint\":{},\"token\":{},\"worker\":{}}}}}\n",
        hello.proto,
        hello.fingerprint,
        json_str(&hello.token),
        json_str(&hello.worker),
    )
}

/// Parses a coordinator handshake reply (welcome or reject).
///
/// # Errors
///
/// Returns a [`WireError`] for non-JSON input, a frame that is neither a
/// `welcome` nor a `reject` envelope, or missing/mistyped fields inside
/// either envelope.
pub fn parse_reply(line: &str) -> Result<HandshakeReply, WireError> {
    let root: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return err(format!("handshake reply is not valid JSON: {e}")),
    };
    let root = want_obj(&root, "handshake reply")?;
    if let Some(v) = field(root, "reject") {
        let body = want_obj(v, "\"reject\"")?;
        let reason = match field(body, "reason") {
            Some(v) => want_str(v, "\"reason\"", MAX_FRAME)?.to_string(),
            None => return err("reject is missing \"reason\""),
        };
        return Ok(HandshakeReply::Reject { reason });
    }
    let body = match field(root, "welcome") {
        Some(v) => want_obj(v, "\"welcome\"")?,
        None => return err("reply is neither a \"welcome\" nor a \"reject\""),
    };
    let proto = match field(body, "proto") {
        Some(v) => want_u64(v, "\"proto\"")?,
        None => return err("welcome is missing \"proto\""),
    };
    let proto = match u32::try_from(proto) {
        Ok(p) => p,
        Err(_) => return err("\"proto\" out of u32 range"),
    };
    let session = match field(body, "session") {
        Some(v) => want_str(v, "\"session\"", MAX_TOKEN)?.to_string(),
        None => return err("welcome is missing \"session\""),
    };
    if session.is_empty() {
        return err("\"session\" must not be empty");
    }
    let gen = match field(body, "gen") {
        Some(v) => want_u64(v, "\"gen\"")?,
        None => return err("welcome is missing \"gen\""),
    };
    let resume = match field(body, "resume") {
        Some(v) => {
            let key = want_str(v, "\"resume\"", MAX_FRAME)?;
            if key.is_empty() {
                None
            } else {
                Some(key.to_string())
            }
        }
        None => None,
    };
    Ok(HandshakeReply::Welcome {
        proto,
        session,
        gen,
        resume,
    })
}

/// Renders a welcome frame (newline included).
pub fn render_welcome(session: &str, gen: u64, resume: Option<&str>) -> String {
    format!(
        "{{\"welcome\":{{\"proto\":{PROTO_VERSION},\"session\":{},\"gen\":{gen},\"resume\":{}}}}}\n",
        json_str(session),
        json_str(resume.unwrap_or("")),
    )
}

/// Renders a reject frame (newline included).
pub fn render_reject(reason: &str) -> String {
    format!("{{\"reject\":{{\"reason\":{}}}}}\n", json_str(reason))
}

/// Configuration fingerprint both sides compute independently: FNV-1a
/// over the protocol version and the experiment dispatch table. A worker
/// whose fingerprint differs was built against an incompatible cell API
/// and is rejected at registration instead of producing wrong cells.
pub fn fingerprint(experiments: &[&str]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for byte in PROTO_VERSION.to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    for name in experiments {
        for &byte in name.as_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        h = (h ^ 0xff).wrapping_mul(FNV_PRIME);
    }
    h
}

fn json_str(s: &str) -> String {
    serde_json::to_string(&s).unwrap_or_else(|_| "\"\"".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_and_partial() {
        let buf = b"hello world\nrest";
        match parse_frame(buf).expect("parse") {
            FrameStatus::Complete { line, consumed } => {
                assert_eq!(line, "hello world");
                assert_eq!(consumed, 12);
                assert_eq!(&buf[consumed..], b"rest");
            }
            other => panic!("expected complete, got {other:?}"),
        }
        assert_eq!(parse_frame(b"no newline yet"), Ok(FrameStatus::Incomplete));
        assert_eq!(parse_frame(b""), Ok(FrameStatus::Incomplete));
    }

    #[test]
    fn frame_strips_carriage_return() {
        match parse_frame(b"line\r\n").expect("parse") {
            FrameStatus::Complete { line, consumed } => {
                assert_eq!(line, "line");
                assert_eq!(consumed, 6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_frame_is_rejected_not_buffered() {
        let buf = vec![b'x'; MAX_FRAME + 1];
        let e = parse_frame(&buf).expect_err("over cap");
        assert!(e.reason.contains("exceeds"), "{e}");
        // Exactly at the cap with no newline: still waiting.
        let buf = vec![b'x'; MAX_FRAME];
        assert_eq!(parse_frame(&buf), Ok(FrameStatus::Incomplete));
        // A newline inside an oversized buffer still yields the frame.
        let mut buf = vec![b'x'; 16];
        buf.push(b'\n');
        buf.extend_from_slice(&vec![b'y'; MAX_FRAME]);
        assert!(matches!(
            parse_frame(&buf),
            Ok(FrameStatus::Complete { consumed: 17, .. })
        ));
    }

    #[test]
    fn non_utf8_frame_is_an_error() {
        let e = parse_frame(b"\xff\xfe\n").expect_err("bad utf8");
        assert!(e.reason.contains("UTF-8"), "{e}");
    }

    #[test]
    fn hello_round_trips() {
        let hello = Hello {
            proto: PROTO_VERSION,
            fingerprint: fingerprint(&["faults"]),
            token: "s42".into(),
            worker: "w-tcp-7".into(),
        };
        let line = render_hello(&hello);
        assert!(line.ends_with('\n'));
        let parsed = parse_hello(line.trim_end()).expect("parse");
        assert_eq!(parsed, hello);
    }

    #[test]
    fn hello_rejections_name_the_field() {
        for (line, needle) in [
            ("not json", "not valid JSON"),
            ("[1]", "must be a JSON object"),
            ("{}", "missing the \"hello\" envelope"),
            ("{\"hello\":3}", "\"hello\" must be a JSON object"),
            ("{\"hello\":{}}", "missing \"proto\""),
            ("{\"hello\":{\"proto\":-1}}", "\"proto\""),
            ("{\"hello\":{\"proto\":1}}", "missing \"fingerprint\""),
            (
                "{\"hello\":{\"proto\":1,\"fingerprint\":2}}",
                "missing \"worker\"",
            ),
            (
                "{\"hello\":{\"proto\":1,\"fingerprint\":2,\"worker\":\"\"}}",
                "must not be empty",
            ),
            (
                "{\"hello\":{\"proto\":1,\"fingerprint\":2,\"worker\":\"a\\nb\"}}",
                "control characters",
            ),
        ] {
            let e = parse_hello(line).expect_err(line);
            assert!(e.reason.contains(needle), "{line}: {e} missing {needle:?}");
        }
        let long = format!(
            "{{\"hello\":{{\"proto\":1,\"fingerprint\":2,\"worker\":\"w\",\"token\":\"{}\"}}}}",
            "t".repeat(MAX_TOKEN + 1)
        );
        let e = parse_hello(&long).expect_err("token cap");
        assert!(e.reason.contains("exceeds"), "{e}");
    }

    #[test]
    fn reply_round_trips_both_ways() {
        let w = render_welcome("s7", 3, Some("cell-a"));
        match parse_reply(w.trim_end()).expect("welcome") {
            HandshakeReply::Welcome {
                proto,
                session,
                gen,
                resume,
            } => {
                assert_eq!(proto, PROTO_VERSION);
                assert_eq!(session, "s7");
                assert_eq!(gen, 3);
                assert_eq!(resume.as_deref(), Some("cell-a"));
            }
            other => panic!("{other:?}"),
        }
        let w = render_welcome("s8", 0, None);
        assert!(matches!(
            parse_reply(w.trim_end()),
            Ok(HandshakeReply::Welcome { resume: None, .. })
        ));
        let r = render_reject("protocol version 9 unsupported");
        match parse_reply(r.trim_end()).expect("reject") {
            HandshakeReply::Reject { reason } => {
                assert!(reason.contains("version 9"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reply_rejections_are_structured() {
        for (line, needle) in [
            ("{}", "neither"),
            ("{\"welcome\":{}}", "missing \"proto\""),
            ("{\"welcome\":{\"proto\":1}}", "missing \"session\""),
            (
                "{\"welcome\":{\"proto\":1,\"session\":\"\"}}",
                "must not be empty",
            ),
            (
                "{\"welcome\":{\"proto\":1,\"session\":\"s\"}}",
                "missing \"gen\"",
            ),
            ("{\"reject\":{}}", "missing \"reason\""),
        ] {
            let e = parse_reply(line).expect_err(line);
            assert!(e.reason.contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn fingerprint_separates_tables_and_versions() {
        assert_eq!(fingerprint(&["faults"]), fingerprint(&["faults"]));
        assert_ne!(fingerprint(&["faults"]), fingerprint(&[]));
        assert_ne!(fingerprint(&["faults"]), fingerprint(&["faults", "serve"]));
        // Concatenation must not collide with separation.
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
    }

    #[test]
    fn escaped_strings_survive_the_round_trip() {
        let r = render_reject("bad \"quote\" and \\ backslash");
        match parse_reply(r.trim_end()).expect("parse") {
            HandshakeReply::Reject { reason } => {
                assert_eq!(reason, "bad \"quote\" and \\ backslash");
            }
            other => panic!("{other:?}"),
        }
    }
}

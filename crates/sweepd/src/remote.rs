//! TCP listener for remote workers.
//!
//! Workers dial this port (daemon flag `--worker-listen`), send one
//! [`wire::Hello`] frame, and receive a welcome (fresh session or
//! reconnect-with-resume) or a reject naming the reason. After the
//! handshake the connection carries the same JSONL event protocol a
//! local worker speaks over its pipes, reassembled with the shared
//! length-capped frame codec and passed through the daemon's scripted
//! network-fault injector.
//!
//! The handshake itself bypasses netem by design: the chaos scope is
//! the steady-state stream, and a scripted drop of the hello would
//! only exercise the worker's redial loop, which the connection-level
//! faults already cover.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::daemon::Daemon;
use crate::wire;

/// How long a dialing worker gets to produce its hello frame before
/// the connection is dropped (keeps idle scanners from pinning
/// handshake threads).
const HELLO_TIMEOUT: Duration = Duration::from_secs(10);

/// Accepts remote-worker registrations until the daemon drains.
/// `on_bound` receives the bound address (tests bind port 0).
///
/// # Errors
///
/// Returns the underlying I/O error when the listener cannot bind.
pub fn serve_workers(
    daemon: Arc<Daemon>,
    addr: &str,
    on_bound: impl FnOnce(SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    on_bound(listener.local_addr()?);
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let daemon = Arc::clone(&daemon);
                std::thread::spawn(move || {
                    if let Err(reason) = handshake(&daemon, stream) {
                        obs::counter_add("sweepd.remote.rejected", 1);
                        eprintln!("sweepd: worker registration failed: {reason}");
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if daemon.draining() {
                    return Ok(());
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Reads the hello frame, validates it, and hands the connection (plus
/// any bytes read past the hello) to the daemon for registration.
fn handshake(daemon: &Daemon, mut stream: TcpStream) -> Result<(), String> {
    stream
        .set_read_timeout(Some(HELLO_TIMEOUT))
        .map_err(|e| format!("setting hello timeout: {e}"))?;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    let (line, consumed) = loop {
        match wire::parse_frame(&buf) {
            Ok(wire::FrameStatus::Complete { line, consumed }) => {
                break (line.to_string(), consumed);
            }
            Ok(wire::FrameStatus::Incomplete) => {}
            Err(e) => {
                let _ = stream.write_all(wire::render_reject(&e.reason).as_bytes());
                return Err(e.reason);
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed before hello".into()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("reading hello: {e}")),
        }
    };
    let hello = match wire::parse_hello(&line) {
        Ok(h) => h,
        Err(e) => {
            let _ = stream.write_all(wire::render_reject(&e.reason).as_bytes());
            return Err(e.reason);
        }
    };
    let leftover = buf[consumed..].to_vec();
    // Steady-state liveness is the daemon's heartbeat deadline, not a
    // socket timeout: clear it so a quiet-but-alive link isn't cut.
    stream
        .set_read_timeout(None)
        .map_err(|e| format!("clearing hello timeout: {e}"))?;
    daemon.register_remote(&hello, stream, leftover)
}

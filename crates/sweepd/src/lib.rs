//! `sweepd` — a fault-tolerant sweep-service daemon over the MetaNMP
//! experiment stack.
//!
//! The repo's sweeps (`metanmp-experiments faults --sweep-dir …`) are
//! single-process: one crash loses the process, and one wedged cell
//! wedges the pool. `sweepd` turns the same journaled sweep into a
//! supervised service:
//!
//! * **Control plane** ([`server`], [`http`]): a hand-rolled HTTP/1.1
//!   server over `std::net` (the build has no network crates). Sweep
//!   manifests arrive on `POST /sweeps`; progress streams from
//!   `GET /sweeps/:id`; `GET /metrics` exposes the telemetry snapshot.
//! * **Worker fleet** ([`daemon`]): cells are sharded across
//!   supervised `experiments --worker` child processes speaking a
//!   line-flushed JSONL protocol over stdin/stdout. Liveness is
//!   heartbeat-based with a hard deadline; dead workers respawn under
//!   jittered exponential backoff ([`faultsim::Backoff`]).
//! * **Crash migration**: the per-sweep JSONL journal (shared with the
//!   in-process sweep runner) is the single source of truth — lease
//!   records, idempotent completions, failed attempts. A cell leased
//!   to a dead worker is re-leased to a healthy one and resumes from
//!   its `inflight-<key>.ckpt` byte-identically.
//! * **Graceful degradation**: cells carry wall-clock budgets and
//!   retry budgets; when the live fleet drops below the floor, the
//!   lowest-priority sweeps are shed with a structured reason; SIGTERM
//!   drains in-flight cells to checkpoints and exits 3 ("interrupted,
//!   resumable") — the exit-code contract the rest of the repo uses.
//! * **Distributed workers** ([`remote`], [`wire`]): workers on other
//!   hosts dial `--worker-listen`, complete a versioned registration
//!   handshake (protocol version, experiment-set fingerprint, session
//!   token for reconnect-with-resume), and speak the same JSONL
//!   protocol over a length-capped framed TCP stream. Leases are
//!   fence-generation-tagged so a partitioned worker's stale
//!   completions are rejected, and the coordinator-side transport can
//!   be wrapped in a deterministic network-fault injector
//!   ([`faultsim::Netem`]) scripted via `net*` scenario directives.

#![warn(missing_docs)]

pub mod daemon;
pub mod http;
pub mod manifest;
pub mod remote;
pub mod server;
pub mod wire;

pub use daemon::{CancelError, Daemon, DaemonConfig, SweepView, WorkerView};
pub use http::{parse_request, HttpError, ParseStatus, Request};
pub use manifest::{parse_manifest, SweepManifest};
pub use remote::serve_workers;

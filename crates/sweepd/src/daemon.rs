//! The sweep-service core: sweep state, the supervised worker fleet,
//! and the supervision tick.
//!
//! # Supervision model
//!
//! The daemon owns a fleet of worker *slots*. A slot holds at most one
//! live worker link — either an `experiments` child running in
//! `--worker` mode (spawned locally, spoken to over stdin/stdout
//! pipes), or a *remote* worker that dialed the daemon's worker port
//! and completed the [`crate::wire`] registration handshake (spoken to
//! over a framed TCP stream). Local slots are fixed at startup; remote
//! slots are appended as workers register and are never respawned by
//! the daemon — a remote worker that dies simply redials. Each link's
//! read side is drained by a dedicated reader thread that timestamps
//! every delivered line (heartbeats included) and forwards protocol
//! events to the supervisor over a channel.
//!
//! The supervision tick, run every few tens of milliseconds:
//!
//! 1. applies worker events (completions journaled idempotently,
//!    errors charged against the cell's retry budget),
//! 2. declares workers dead when their last output line is older than
//!    the heartbeat deadline, and cancels leases older than the cell's
//!    wall-clock budget,
//! 3. reaps exited children; a death while holding a lease journals a
//!    [`FailRecord`] and returns the cell to the pending queue —
//!    *crash migration*: the next lease (any healthy worker) resumes
//!    from the cell's `inflight-<key>.ckpt` byte-identically,
//! 4. sheds the lowest-priority sweeps (structured reason, never
//!    silent) while the live fleet is below the floor,
//! 5. advances sweep lifecycle (all cells done → optional finalize
//!    pass producing the standard artifacts),
//! 6. leases pending cells to idle workers and respawns dead slots
//!    under jittered exponential backoff.
//!
//! # Lease fencing
//!
//! Every lease carries a daemon-global, monotonically increasing
//! *fence generation*. The run command echoes it to the worker, the
//! worker echoes it back on `done`/`err`, and a completion whose echo
//! does not match the live lease's generation is counted under
//! `sweepd.cells.fenced` and dropped: a worker that was partitioned
//! away, had its cell migrated, and later reconnects cannot overwrite
//! the replacement's result. The journal applies the same rule on
//! resume (see `checkpoint::manifest`), so fencing holds even across a
//! daemon restart.
//!
//! # Remote liveness and reconnection
//!
//! Remote links share the heartbeat deadline with local workers: the
//! reader thread timestamps each *delivered* frame, so a network
//! partition (or a scripted [`faultsim::Netem`] partition window)
//! starves the timestamp exactly like a hung process and triggers the
//! same crash-migration path. A remote worker that lost its connection
//! redials with its session token: if its slot is still live, the link
//! is re-attached in place (a new generation invalidates the stale
//! reader) and the welcome names any still-held lease so the worker
//! can re-send a completion that was lost in flight; if the slot was
//! already reaped, the worker observes a fresh registration (empty
//! resume) and knows its old lease migrated.
//!
//! The journal under each sweep's directory is the single source of
//! truth: `faults.manifest.jsonl` with the exact header the in-process
//! sweep would write, so `metanmp-experiments faults --resume <dir>`
//! replays a daemon-run sweep into byte-identical `results/` artifacts.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use checkpoint::manifest::{cell_record_fenced, FailRecord, Journal, JournalHeader, LeaseRecord};
use checkpoint::FORMAT_VERSION;
use faultsim::{Backoff, NetDir, Netem, NetemConfig, Scenario};
use serde::value::Value;
use serde::{Deserialize, Serialize};

use crate::manifest::SweepManifest;
use crate::wire;

/// Worker-identity prefix used in lease records and status views for
/// locally spawned workers (remote workers name themselves in their
/// registration hello).
fn worker_name(slot: usize) -> String {
    format!("w-{slot}")
}

/// Daemon-wide configuration, fixed at startup.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker command prefix (the experiments binary, or a stand-in
    /// under test); mode flags are appended per invocation.
    pub worker_cmd: Vec<String>,
    /// Local worker slots in the fleet. Zero is allowed: a daemon can
    /// run entirely on remote workers attached over TCP.
    pub workers: usize,
    /// Root directory for per-sweep state (`<state_dir>/sweep-<id>/`).
    pub state_dir: PathBuf,
    /// A worker whose last output line is older than this is dead.
    pub heartbeat_deadline: Duration,
    /// Heartbeat period passed to workers via `--heartbeat-ms`.
    pub heartbeat_ms: u64,
    /// Minimum healthy fleet; below it, low-priority sweeps are shed.
    pub fleet_floor: usize,
    /// Default per-cell wall-clock budget (manifest can override).
    pub default_cell_timeout_s: Option<u64>,
    /// Default per-cell retry budget (manifest can override).
    pub default_retry_budget: u32,
    /// Base respawn backoff in milliseconds.
    pub backoff_base_ms: u64,
    /// Respawn backoff cap in milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed for the jittered respawn backoff (deterministic in tests).
    pub backoff_seed: u64,
    /// `--ckpt-interval` forwarded to workers and the finalize pass.
    pub ckpt_interval: u64,
    /// How long a drain waits for workers to persist and exit before
    /// escalating to SIGKILL.
    pub drain_grace: Duration,
    /// Scripted network-fault schedule applied to remote worker links
    /// (`net*` directives; an empty scenario is a byte-exact no-op).
    /// Streams are numbered in registration order, starting at 0.
    pub netem: Scenario,
}

impl DaemonConfig {
    /// Reasonable defaults around a worker command.
    pub fn new(worker_cmd: Vec<String>, state_dir: PathBuf) -> Self {
        DaemonConfig {
            worker_cmd,
            workers: 2,
            state_dir,
            heartbeat_deadline: Duration::from_millis(2000),
            heartbeat_ms: 100,
            fleet_floor: 1,
            default_cell_timeout_s: None,
            default_retry_budget: 2,
            backoff_base_ms: 50,
            backoff_cap_ms: 5000,
            backoff_seed: 0x5eed_5eed_5eed_5eed,
            ckpt_interval: 256,
            drain_grace: Duration::from_secs(10),
            netem: Scenario::empty(),
        }
    }
}

/// Image of the `--grid` one-shot output.
#[derive(Serialize, Deserialize, Debug)]
struct GridDoc {
    experiment: String,
    sweep_hash: u64,
    seed: u64,
    cells: Vec<GridCell>,
}

#[derive(Serialize, Deserialize, Debug)]
struct GridCell {
    key: String,
    hash: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellStatus {
    Pending,
    Leased,
    Done,
    Failed,
}

#[derive(Debug)]
struct Cell {
    key: String,
    hash: u64,
    attempts: u32,
    status: CellStatus,
}

/// Lifecycle of a submitted sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepStatus {
    /// Cells are being leased and computed.
    Running,
    /// All cells done; the finalize pass is producing artifacts.
    Finalizing,
    /// Complete (artifacts under the sweep directory when finalized).
    Done,
    /// Failed with a structured reason.
    Failed(String),
    /// Shed under fleet degradation, with the structured reason.
    Shed(String),
    /// Cancelled on request; in-flight checkpoints are collected.
    Cancelled,
}

impl SweepStatus {
    fn label(&self) -> &'static str {
        match self {
            SweepStatus::Running => "running",
            SweepStatus::Finalizing => "finalizing",
            SweepStatus::Done => "done",
            SweepStatus::Failed(_) => "failed",
            SweepStatus::Shed(_) => "shed",
            SweepStatus::Cancelled => "cancelled",
        }
    }

    fn detail(&self) -> String {
        match self {
            SweepStatus::Failed(r) | SweepStatus::Shed(r) => r.clone(),
            _ => String::new(),
        }
    }

    /// Whether resumable work would be lost if the daemon exited now.
    fn unfinished(&self) -> bool {
        matches!(self, SweepStatus::Running | SweepStatus::Finalizing)
    }
}

struct Sweep {
    id: u64,
    manifest: SweepManifest,
    dir: PathBuf,
    cells: Vec<Cell>,
    journal: Journal,
    status: SweepStatus,
    finalize_child: Option<Child>,
}

impl Sweep {
    fn cell_timeout(&self, cfg: &DaemonConfig) -> Option<Duration> {
        self.manifest
            .cell_timeout_s
            .or(cfg.default_cell_timeout_s)
            .map(Duration::from_secs)
    }

    fn retry_budget(&self, cfg: &DaemonConfig) -> u32 {
        self.manifest
            .retry_budget
            .unwrap_or(cfg.default_retry_budget)
    }

    fn has_pending(&self) -> bool {
        self.status == SweepStatus::Running
            && self.cells.iter().any(|c| c.status == CellStatus::Pending)
    }
}

/// Events parsed off a worker's output by its reader thread. `gen` is
/// the fence generation echoed from the run command; events from
/// workers predating the fencing protocol carry `None` and fall back
/// to the slot-generation guard alone.
#[derive(Debug)]
enum WorkerEvent {
    Ready,
    Done {
        key: String,
        result: String,
        gen: Option<u64>,
    },
    Err {
        key: String,
        error: String,
        gen: Option<u64>,
    },
    Interrupted {
        key: String,
    },
    Eof,
}

fn parse_event(line: &str) -> Option<WorkerEvent> {
    let v: Value = serde_json::from_str(line).ok()?;
    let get_str = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
    let gen = v.get("gen").and_then(Value::as_u64);
    match v.get("ev").and_then(Value::as_str)? {
        // The spawned child's pid is already known from `Child::id`;
        // the ready line only proves the protocol came up.
        "ready" => Some(WorkerEvent::Ready),
        "done" => Some(WorkerEvent::Done {
            key: get_str("key")?,
            result: get_str("result")?,
            gen,
        }),
        "err" => Some(WorkerEvent::Err {
            key: get_str("key")?,
            error: get_str("error").unwrap_or_default(),
            gen,
        }),
        "interrupted" => Some(WorkerEvent::Interrupted {
            key: get_str("key")?,
        }),
        // Heartbeats carry no payload the supervisor needs: the reader
        // thread already timestamped the line.
        _ => None,
    }
}

struct LeaseInfo {
    sweep_id: u64,
    key: String,
    started: Instant,
    /// Fence generation journaled with the lease and echoed by the
    /// worker; completions with a different echo are fenced.
    gen: u64,
}

/// The write side of a worker: a local child process or a remote TCP
/// link.
enum Link {
    /// Locally spawned `--worker` child over stdin/stdout pipes.
    Child {
        child: Child,
        pid: u32,
        stdin: ChildStdin,
    },
    /// Remote worker attached via the registration handshake.
    Remote {
        writer: TcpStream,
        /// Session token the worker redials with.
        session: String,
        /// Worker-chosen identity from the hello (lease records).
        name: String,
        /// Netem stream id (registration order), kept across resumes.
        stream: u64,
        /// Coordinator-side egress fault injector, when active.
        netem: Option<Netem>,
    },
}

struct Proc {
    link: Link,
    /// Updated by the reader thread on every delivered line.
    last_line: Arc<Mutex<Instant>>,
    /// Generation guard: events from a previous incarnation of this
    /// slot (or a superseded remote connection) are ignored.
    gen: u64,
    /// Sweep the worker is currently bound to (0 = none yet).
    bound_sweep: u64,
    lease: Option<LeaseInfo>,
    drain_signaled: bool,
}

impl Proc {
    fn is_remote(&self) -> bool {
        matches!(self.link, Link::Remote { .. })
    }

    fn pid(&self) -> u32 {
        match &self.link {
            Link::Child { pid, .. } => *pid,
            Link::Remote { .. } => 0,
        }
    }

    fn session(&self) -> Option<&str> {
        match &self.link {
            Link::Child { .. } => None,
            Link::Remote { session, .. } => Some(session),
        }
    }

    fn display_name(&self, idx: usize) -> String {
        match &self.link {
            Link::Child { .. } => worker_name(idx),
            Link::Remote { name, .. } => name.clone(),
        }
    }

    /// Sends one protocol line. Remote frames pass through the egress
    /// fault injector, so a scripted drop silently loses the command —
    /// exactly the failure the lease timeouts exist to absorb.
    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        match &mut self.link {
            Link::Child { stdin, .. } => writeln!(stdin, "{line}").and_then(|()| stdin.flush()),
            Link::Remote { writer, netem, .. } => {
                let frames = match netem.as_mut() {
                    Some(n) => n.apply(line.as_bytes().to_vec()),
                    None => vec![line.as_bytes().to_vec()],
                };
                for f in frames {
                    writer.write_all(&f)?;
                    writer.write_all(b"\n")?;
                }
                writer.flush()
            }
        }
    }

    /// Releases egress frames whose scripted delay has elapsed (quiet
    /// links would otherwise hold them forever).
    fn pump_egress(&mut self) {
        if let Link::Remote { writer, netem, .. } = &mut self.link {
            if let Some(n) = netem.as_mut() {
                for f in n.tick() {
                    if writer
                        .write_all(&f)
                        .and_then(|()| writer.write_all(b"\n"))
                        .is_err()
                    {
                        return;
                    }
                }
                let _ = writer.flush();
            }
        }
    }

    /// Hard-stops the link: kill + reap a child, shut down a socket.
    fn terminate(&mut self) {
        match &mut self.link {
            Link::Child { child, .. } => {
                let _ = child.kill();
                let _ = child.wait();
            }
            Link::Remote { writer, .. } => {
                let _ = writer.shutdown(Shutdown::Both);
            }
        }
    }

    /// Non-blocking exit check (local children only; remote workers
    /// are reaped via heartbeat expiry or EOF).
    fn try_reap(&mut self) -> Option<ExitStatus> {
        match &mut self.link {
            Link::Child { child, .. } => child.try_wait().ok().flatten(),
            Link::Remote { .. } => None,
        }
    }

    /// Best-effort cooperative cancellation of the in-flight cell.
    /// Locals get SIGTERM; a remote worker cannot be preempted — its
    /// eventual stale completion is fenced instead.
    fn signal_cell_cancel(&mut self) {
        if let Link::Child { pid, .. } = &self.link {
            send_sigterm(*pid);
        }
    }

    /// One-shot drain signal: SIGTERM a child (checkpoint + exit 3),
    /// send the exit op to a remote worker.
    fn signal_drain(&mut self) {
        if self.drain_signaled {
            return;
        }
        self.drain_signaled = true;
        match &self.link {
            Link::Child { pid, .. } => send_sigterm(*pid),
            Link::Remote { .. } => {
                let _ = self.send_line("{\"op\":\"exit\"}");
            }
        }
    }
}

/// Whether a slot belongs to the fixed local fleet or was appended by
/// a remote registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    Local,
    Remote,
}

struct Slot {
    kind: SlotKind,
    proc: Option<Proc>,
    restarts: u64,
    /// Consecutive deaths, feeding the backoff exponent; reset by a
    /// successful cell completion.
    deaths: u32,
    backoff: Backoff,
    respawn_after: Instant,
    next_gen: u64,
}

struct State {
    sweeps: BTreeMap<u64, Sweep>,
    slots: Vec<Slot>,
    next_id: u64,
    drain_started: Option<Instant>,
    /// Session token → slot index for reconnect-with-resume.
    sessions: BTreeMap<String, usize>,
    next_session: u64,
    /// Netem stream ids, assigned in registration order.
    next_stream: u64,
    /// Daemon-global fence generation; starts at 1 so 0 stays the
    /// journal's "unfenced legacy record" sentinel.
    next_fence: u64,
}

/// The daemon: shared between the HTTP server threads (submission and
/// status), the worker listener, and the supervisor thread (ticks).
pub struct Daemon {
    cfg: DaemonConfig,
    state: Mutex<State>,
    events_tx: Sender<(usize, u64, WorkerEvent)>,
    events_rx: Mutex<Receiver<(usize, u64, WorkerEvent)>>,
    draining: AtomicBool,
}

/// Why a cancel request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CancelError {
    /// No sweep with the given id.
    NotFound,
    /// The sweep already reached the named terminal state.
    Terminal(String),
}

/// Summary of one sweep for `GET /sweeps`.
#[derive(Serialize, Deserialize, Debug)]
pub struct SweepView {
    /// Sweep id.
    pub id: u64,
    /// Experiment name.
    pub experiment: String,
    /// Sweep seed.
    pub seed: u64,
    /// Scheduling priority.
    pub priority: i64,
    /// Lifecycle label: `running|finalizing|done|failed|shed|cancelled`.
    pub status: String,
    /// Structured reason for `failed`/`shed`, else empty.
    pub detail: String,
    /// Total cells in the grid.
    pub total: u64,
    /// Completed cells.
    pub done: u64,
    /// Cells currently leased to workers.
    pub leased: u64,
    /// Cells waiting for a worker.
    pub pending: u64,
    /// Cells that exhausted their retry budget.
    pub failed: u64,
}

/// Per-cell detail for `GET /sweeps/:id`.
#[derive(Serialize, Deserialize, Debug)]
pub struct CellView {
    /// Cell key.
    pub key: String,
    /// `pending|leased|done|failed`.
    pub status: String,
    /// Failed attempts so far.
    pub attempts: u32,
}

/// Worker-slot health for `GET /healthz`.
#[derive(Serialize, Deserialize, Debug)]
pub struct WorkerView {
    /// Slot index.
    pub idx: u64,
    /// Worker identity as it appears in lease journal records:
    /// `w-<idx>` for locals, the self-reported hello name for remotes
    /// (empty while a slot is vacant).
    pub name: String,
    /// Whether a live process occupies the slot.
    pub alive: bool,
    /// Live worker's pid (0 when dead or remote).
    pub pid: u64,
    /// Times this slot respawned (local) or re-attached (remote).
    pub restarts: u64,
    /// Key of the currently leased cell, empty when idle.
    pub lease: String,
    /// `local` or `remote`.
    pub kind: String,
}

impl Daemon {
    /// Creates a daemon (no workers spawned until work arrives).
    pub fn new(cfg: DaemonConfig) -> Arc<Self> {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let slots = (0..cfg.workers)
            .map(|i| Slot {
                kind: SlotKind::Local,
                proc: None,
                restarts: 0,
                deaths: 0,
                backoff: Backoff::with_jitter(
                    cfg.backoff_base_ms,
                    cfg.backoff_cap_ms,
                    200,
                    cfg.backoff_seed.wrapping_add(i as u64),
                ),
                respawn_after: now,
                next_gen: 0,
            })
            .collect();
        Arc::new(Daemon {
            cfg,
            state: Mutex::new(State {
                sweeps: BTreeMap::new(),
                slots,
                next_id: 1,
                drain_started: None,
                sessions: BTreeMap::new(),
                next_session: 1,
                next_stream: 0,
                next_fence: 1,
            }),
            events_tx: tx,
            events_rx: Mutex::new(rx),
            draining: AtomicBool::new(false),
        })
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.cfg
    }

    /// Enumerates the sweep grid by running the worker command's
    /// `--grid` one-shot mode.
    fn fetch_grid(&self, manifest: &SweepManifest) -> Result<GridDoc, String> {
        let cmd = &self.cfg.worker_cmd;
        let output = Command::new(&cmd[0])
            .args(&cmd[1..])
            .arg("--grid")
            .arg(&manifest.experiment)
            .arg("--seed")
            .arg(manifest.seed.to_string())
            .stdin(Stdio::null())
            .output()
            .map_err(|e| format!("spawning grid command {:?}: {e}", cmd[0]))?;
        if !output.status.success() {
            return Err(format!(
                "grid command exited with {}: {}",
                output.status,
                String::from_utf8_lossy(&output.stderr).trim()
            ));
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        let line = stdout
            .lines()
            .rev()
            .find(|l| !l.trim().is_empty())
            .ok_or_else(|| "grid command produced no output".to_string())?;
        let doc: GridDoc =
            serde_json::from_str(line).map_err(|e| format!("parsing grid output: {e}"))?;
        if doc.experiment != manifest.experiment || doc.seed != manifest.seed {
            return Err(format!(
                "grid command answered for {:?} seed {} instead of {:?} seed {}",
                doc.experiment, doc.seed, manifest.experiment, manifest.seed
            ));
        }
        if doc.cells.is_empty() {
            return Err("grid has no cells".to_string());
        }
        Ok(doc)
    }

    /// Registers a sweep: enumerates its grid, creates the per-sweep
    /// directory and journal, and queues every cell.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the daemon is draining, the
    /// grid command fails, or the journal cannot be created.
    pub fn submit(&self, manifest: SweepManifest) -> Result<u64, String> {
        if self.draining.load(Ordering::SeqCst) {
            return Err("daemon is draining; not accepting new sweeps".into());
        }
        let grid = self.fetch_grid(&manifest)?;
        let mut st = self.state.lock().expect("daemon state");
        let id = st.next_id;
        st.next_id += 1;
        let dir = self.cfg.state_dir.join(format!("sweep-{id}"));
        std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        // The journal is the one the in-process sweep would write, so
        // `--resume <dir>` (the finalize pass, or a manual rerun)
        // replays daemon-computed cells directly.
        let path = dir.join(format!("{}.manifest.jsonl", manifest.experiment));
        let header = JournalHeader {
            version: FORMAT_VERSION,
            config_hash: grid.sweep_hash,
            seed: manifest.seed,
        };
        let journal = Journal::create(&path, &header)
            .map_err(|e| format!("creating journal {}: {e}", path.display()))?;
        let cells = grid
            .cells
            .into_iter()
            .map(|c| Cell {
                key: c.key,
                hash: c.hash,
                attempts: 0,
                status: CellStatus::Pending,
            })
            .collect();
        st.sweeps.insert(
            id,
            Sweep {
                id,
                manifest,
                dir,
                cells,
                journal,
                status: SweepStatus::Running,
                finalize_child: None,
            },
        );
        Ok(id)
    }

    /// Cancels a running or finalizing sweep: revokes its leases
    /// (stale completions are subsequently fenced), kills any finalize
    /// pass, marks the sweep cancelled, and garbage-collects orphaned
    /// `inflight-<key>.ckpt` files under its directory.
    ///
    /// Returns `Ok(true)` when this call performed the cancel and
    /// `Ok(false)` when the sweep was already cancelled (idempotent).
    ///
    /// # Errors
    ///
    /// [`CancelError::NotFound`] for an unknown id,
    /// [`CancelError::Terminal`] when the sweep already finished,
    /// failed, or was shed.
    pub fn cancel(&self, id: u64) -> Result<bool, CancelError> {
        let mut st = self.state.lock().expect("daemon state");
        let status = match st.sweeps.get(&id) {
            None => return Err(CancelError::NotFound),
            Some(s) => s.status.clone(),
        };
        match status {
            SweepStatus::Cancelled => Ok(false),
            SweepStatus::Done | SweepStatus::Failed(_) | SweepStatus::Shed(_) => {
                Err(CancelError::Terminal(status.label().to_string()))
            }
            SweepStatus::Running | SweepStatus::Finalizing => {
                for slot in st.slots.iter_mut() {
                    if let Some(p) = slot.proc.as_mut() {
                        if p.lease.as_ref().is_some_and(|l| l.sweep_id == id) {
                            p.lease = None;
                        }
                    }
                }
                let sweep = st.sweeps.get_mut(&id).expect("checked above");
                if let Some(mut child) = sweep.finalize_child.take() {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                for cell in sweep.cells.iter_mut() {
                    if cell.status == CellStatus::Leased {
                        cell.status = CellStatus::Pending;
                    }
                }
                sweep.status = SweepStatus::Cancelled;
                gc_inflight(&sweep.dir);
                obs::counter_add("sweepd.sweeps.cancelled", 1);
                Ok(true)
            }
        }
    }

    /// Registers a remote worker after its hello frame was read.
    /// Writes the welcome/reject reply itself (handshake frames bypass
    /// netem by design — the chaos scope is the steady-state stream).
    ///
    /// # Errors
    ///
    /// Returns the rejection reason; the reject frame has already been
    /// written to the socket on a best-effort basis.
    pub(crate) fn register_remote(
        &self,
        hello: &wire::Hello,
        mut stream: TcpStream,
        leftover: Vec<u8>,
    ) -> Result<(), String> {
        let mut reject = |reason: String| -> Result<(), String> {
            let _ = stream.write_all(wire::render_reject(&reason).as_bytes());
            let _ = stream.flush();
            Err(reason)
        };
        if hello.proto != wire::PROTO_VERSION {
            return reject(format!(
                "protocol version mismatch: worker speaks {}, coordinator speaks {}",
                hello.proto,
                wire::PROTO_VERSION
            ));
        }
        let expected = wire::fingerprint(crate::manifest::SUPPORTED_EXPERIMENTS);
        if hello.fingerprint != expected {
            return reject(format!(
                "config fingerprint mismatch: worker {:#018x}, coordinator {:#018x} \
                 (builds disagree on the supported experiment set)",
                hello.fingerprint, expected
            ));
        }
        if self.draining() {
            return reject("daemon is draining; not accepting workers".into());
        }

        let mut st = self.state.lock().expect("daemon state");

        // Reconnect-with-resume: a known session token whose slot still
        // holds the remote proc re-attaches the link in place.
        if !hello.token.is_empty() {
            if let Some(&idx) = st.sessions.get(&hello.token) {
                let live = st.slots[idx]
                    .proc
                    .as_ref()
                    .is_some_and(|p| p.session() == Some(hello.token.as_str()));
                if live {
                    return self.resume_remote(&mut st, idx, hello, stream, leftover);
                }
                // The slot was reaped since: fall through to a fresh
                // registration so the worker observes the migration.
                st.sessions.remove(&hello.token);
            }
        }

        // Fresh registration: append a remote slot.
        let session = format!("s{}", st.next_session);
        st.next_session += 1;
        let stream_id = st.next_stream;
        st.next_stream += 1;
        let netem_cfg = NetemConfig::from_scenario(&self.cfg.netem, stream_id);
        let (ingress, egress) = if netem_cfg.is_active() {
            (
                Some(Netem::new(netem_cfg.clone(), stream_id, NetDir::Ingress)),
                Some(Netem::new(netem_cfg, stream_id, NetDir::Egress)),
            )
        } else {
            (None, None)
        };
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(e) => return Err(format!("cloning worker stream: {e}")),
        };
        let welcome = wire::render_welcome(&session, 0, None);
        if let Err(e) = stream
            .write_all(welcome.as_bytes())
            .and_then(|()| stream.flush())
        {
            return Err(format!("writing welcome: {e}"));
        }
        let idx = st.slots.len();
        let last_line = Arc::new(Mutex::new(Instant::now()));
        spawn_remote_reader(
            idx,
            0,
            reader,
            leftover,
            ingress,
            Arc::clone(&last_line),
            self.events_tx.clone(),
        );
        st.sessions.insert(session.clone(), idx);
        st.slots.push(Slot {
            kind: SlotKind::Remote,
            proc: Some(Proc {
                link: Link::Remote {
                    writer: stream,
                    session,
                    name: hello.worker.clone(),
                    stream: stream_id,
                    netem: egress,
                },
                last_line,
                gen: 0,
                bound_sweep: 0,
                lease: None,
                drain_signaled: false,
            }),
            restarts: 0,
            deaths: 0,
            backoff: Backoff::with_jitter(
                self.cfg.backoff_base_ms,
                self.cfg.backoff_cap_ms,
                200,
                self.cfg.backoff_seed.wrapping_add(0x7e_0000 + stream_id),
            ),
            respawn_after: Instant::now(),
            next_gen: 1,
        });
        obs::counter_add("sweepd.remote.registered", 1);
        Ok(())
    }

    /// Re-attaches a redialing worker to its live slot: the stale
    /// socket is shut down, a new generation invalidates its reader,
    /// and the welcome names the still-held lease (if any) so the
    /// worker can re-send a completion lost in flight.
    fn resume_remote(
        &self,
        st: &mut State,
        idx: usize,
        hello: &wire::Hello,
        mut stream: TcpStream,
        leftover: Vec<u8>,
    ) -> Result<(), String> {
        let gen = st.slots[idx].next_gen;
        st.slots[idx].next_gen += 1;
        st.slots[idx].restarts = st.slots[idx].restarts.saturating_add(1);
        let proc = st.slots[idx].proc.as_mut().expect("live slot checked");
        let resume_key = proc.lease.as_ref().map(|l| l.key.clone());
        let welcome = wire::render_welcome(&hello.token, gen, resume_key.as_deref());
        if let Err(e) = stream
            .write_all(welcome.as_bytes())
            .and_then(|()| stream.flush())
        {
            return Err(format!("writing resume welcome: {e}"));
        }
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(e) => return Err(format!("cloning worker stream: {e}")),
        };
        let Link::Remote {
            writer,
            name,
            stream: stream_id,
            netem,
            ..
        } = &mut proc.link
        else {
            unreachable!("resume target checked remote");
        };
        let _ = writer.shutdown(Shutdown::Both);
        *writer = stream;
        *name = hello.worker.clone();
        let stream_id = *stream_id;
        // Fresh per-connection injectors: netem frame counters are
        // per-connection by design (documented in DESIGN §17).
        let netem_cfg = NetemConfig::from_scenario(&self.cfg.netem, stream_id);
        let ingress = if netem_cfg.is_active() {
            *netem = Some(Netem::new(netem_cfg.clone(), stream_id, NetDir::Egress));
            Some(Netem::new(netem_cfg, stream_id, NetDir::Ingress))
        } else {
            *netem = None;
            None
        };
        proc.gen = gen;
        proc.drain_signaled = false;
        if let Ok(mut t) = proc.last_line.lock() {
            *t = Instant::now();
        }
        spawn_remote_reader(
            idx,
            gen,
            reader,
            leftover,
            ingress,
            Arc::clone(&proc.last_line),
            self.events_tx.clone(),
        );
        obs::counter_add("sweepd.remote.reconnects", 1);
        Ok(())
    }

    /// Starts a graceful drain: stop leasing, SIGTERM workers so they
    /// persist in-flight checkpoints, exit once the fleet is reaped.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Whether any sweep still holds resumable work.
    pub fn unfinished(&self) -> bool {
        let st = self.state.lock().expect("daemon state");
        st.sweeps.values().any(|s| s.status.unfinished())
    }

    /// Summaries of all sweeps, newest first.
    pub fn sweep_views(&self) -> Vec<SweepView> {
        let st = self.state.lock().expect("daemon state");
        st.sweeps.values().rev().map(view_of).collect()
    }

    /// Summary plus per-cell detail for one sweep.
    pub fn sweep_detail(&self, id: u64) -> Option<(SweepView, Vec<CellView>)> {
        let st = self.state.lock().expect("daemon state");
        let sweep = st.sweeps.get(&id)?;
        let cells = sweep
            .cells
            .iter()
            .map(|c| CellView {
                key: c.key.clone(),
                status: match c.status {
                    CellStatus::Pending => "pending",
                    CellStatus::Leased => "leased",
                    CellStatus::Done => "done",
                    CellStatus::Failed => "failed",
                }
                .to_string(),
                attempts: c.attempts,
            })
            .collect();
        Some((view_of(sweep), cells))
    }

    /// Health of every worker slot.
    pub fn worker_views(&self) -> Vec<WorkerView> {
        let st = self.state.lock().expect("daemon state");
        st.slots
            .iter()
            .enumerate()
            .map(|(i, s)| WorkerView {
                idx: i as u64,
                name: s.proc.as_ref().map_or(String::new(), |p| p.display_name(i)),
                alive: s.proc.is_some(),
                pid: s.proc.as_ref().map_or(0, |p| u64::from(p.pid())),
                restarts: s.restarts,
                lease: s
                    .proc
                    .as_ref()
                    .and_then(|p| p.lease.as_ref())
                    .map_or(String::new(), |l| l.key.clone()),
                kind: match s.kind {
                    SlotKind::Local => "local",
                    SlotKind::Remote => "remote",
                }
                .to_string(),
            })
            .collect()
    }

    /// Count of live worker processes (local and remote).
    pub fn alive_workers(&self) -> usize {
        let st = self.state.lock().expect("daemon state");
        st.slots.iter().filter(|s| s.proc.is_some()).count()
    }

    /// One supervision pass. The server runs this in a loop; tests call
    /// it directly for deterministic stepping.
    pub fn tick(&self) {
        let mut st = self.state.lock().expect("daemon state");
        let cfg = &self.cfg;
        let now = Instant::now();

        // 1. Worker events.
        {
            let rx = self.events_rx.lock().expect("event channel");
            while let Ok((slot_idx, gen, event)) = rx.try_recv() {
                apply_event(cfg, &mut st, slot_idx, gen, event);
            }
        }

        // 1b. Release scripted egress delays on quiet remote links.
        for slot in st.slots.iter_mut() {
            if let Some(p) = slot.proc.as_mut() {
                p.pump_egress();
            }
        }

        // 2. Liveness deadlines and cell wall-clock budgets.
        for idx in 0..st.slots.len() {
            let (stale, timed_out) = {
                let Some(proc) = st.slots[idx].proc.as_ref() else {
                    continue;
                };
                let stale = proc
                    .last_line
                    .lock()
                    .map(|t| t.elapsed() > cfg.heartbeat_deadline)
                    .unwrap_or(true);
                let timed_out = proc.lease.as_ref().and_then(|l| {
                    let sweep = st.sweeps.get(&l.sweep_id)?;
                    let budget = sweep.cell_timeout(cfg)?;
                    (l.started.elapsed() > budget).then_some((l.sweep_id, budget))
                });
                (stale, timed_out)
            };
            if stale {
                let name = st.slots[idx]
                    .proc
                    .as_ref()
                    .map_or_else(|| worker_name(idx), |p| p.display_name(idx));
                let reason = format!(
                    "worker {name} heartbeat expired (no output for {:?})",
                    cfg.heartbeat_deadline
                );
                kill_slot(cfg, &mut st, idx, &reason, now);
                continue;
            }
            if let Some((sweep_id, budget)) = timed_out {
                // Cooperative cancellation: SIGTERM makes a local
                // worker persist the in-flight checkpoint and exit 3
                // (a remote worker cannot be preempted; its eventual
                // stale completion is fenced). The attempt is charged
                // now so the lease cannot wedge the fleet, and a retry
                // resumes from the checkpoint.
                let lease = st.slots[idx]
                    .proc
                    .as_mut()
                    .and_then(|p| p.lease.take())
                    .expect("timed-out lease");
                let name = st.slots[idx]
                    .proc
                    .as_ref()
                    .map_or_else(|| worker_name(idx), |p| p.display_name(idx));
                let reason = format!(
                    "cell {:?} exceeded its {}s wall-clock budget on worker {name}",
                    lease.key,
                    budget.as_secs(),
                );
                charge_attempt(cfg, &mut st, sweep_id, &lease.key, &reason);
                if let Some(p) = st.slots[idx].proc.as_mut() {
                    p.signal_cell_cancel();
                }
            }
        }

        // 3. Reap exited local workers.
        for idx in 0..st.slots.len() {
            let exited = match st.slots[idx].proc.as_mut() {
                Some(p) => p.try_reap(),
                None => continue,
            };
            if let Some(status) = exited {
                let reason = format!("worker {} exited with {status}", worker_name(idx));
                kill_slot(cfg, &mut st, idx, &reason, now);
            }
        }

        // 4. Fleet health and degradation.
        let alive = st.slots.iter().filter(|s| s.proc.is_some()).count();
        obs::gauge_set("sweepd.workers.alive", alive as f64);
        if alive < cfg.fleet_floor {
            shed_low_priority(cfg, &mut st, alive);
        }

        // 5. Sweep lifecycle: completion and finalize.
        advance_sweeps(cfg, &mut st);

        // 6. Leasing and respawn — or drain.
        if self.draining.load(Ordering::SeqCst) {
            drain_fleet(cfg, &mut st, now);
        } else {
            assign_work(cfg, &mut st, &self.events_tx, now);
        }
    }

    /// Runs supervision ticks until a drain completes. Returns `true`
    /// when all sweeps finished (exit 0), `false` when resumable work
    /// remains (exit 3).
    pub fn run_supervisor(&self, tick_interval: Duration) -> bool {
        loop {
            self.tick();
            if self.draining() {
                let st = self.state.lock().expect("daemon state");
                let live = st.slots.iter().filter(|s| s.proc.is_some()).count();
                let finalizing = st
                    .sweeps
                    .values()
                    .any(|s| s.status == SweepStatus::Finalizing);
                if live == 0 && !finalizing {
                    break;
                }
            }
            std::thread::sleep(tick_interval);
        }
        !self.unfinished()
    }
}

fn view_of(sweep: &Sweep) -> SweepView {
    let count = |s: CellStatus| sweep.cells.iter().filter(|c| c.status == s).count() as u64;
    SweepView {
        id: sweep.id,
        experiment: sweep.manifest.experiment.clone(),
        seed: sweep.manifest.seed,
        priority: sweep.manifest.priority,
        status: sweep.status.label().to_string(),
        detail: sweep.status.detail(),
        total: sweep.cells.len() as u64,
        done: count(CellStatus::Done),
        leased: count(CellStatus::Leased),
        pending: count(CellStatus::Pending),
        failed: count(CellStatus::Failed),
    }
}

/// Applies one worker event, guarded by the slot generation and the
/// lease fence.
fn apply_event(cfg: &DaemonConfig, st: &mut State, slot_idx: usize, gen: u64, event: WorkerEvent) {
    let Some(proc) = st.slots[slot_idx].proc.as_mut() else {
        return;
    };
    if proc.gen != gen {
        return; // event from a previous incarnation of the slot
    }
    match event {
        WorkerEvent::Ready => {}
        WorkerEvent::Done {
            key,
            result,
            gen: fence,
        } => {
            let Some(lease) = proc.lease.take() else {
                return; // completion for a cancelled lease; checkpoint covers it
            };
            if lease.key != key {
                proc.lease = Some(lease);
                return;
            }
            if fence.is_some_and(|g| g != lease.gen) {
                // Stale echo: the worker is finishing an attempt whose
                // lease was superseded (e.g. timeout → re-lease of the
                // same cell to the same worker). The live lease stays.
                proc.lease = Some(lease);
                obs::counter_add("sweepd.cells.fenced", 1);
                return;
            }
            st.slots[slot_idx].deaths = 0;
            let Some(sweep) = st.sweeps.get_mut(&lease.sweep_id) else {
                return;
            };
            let Some(cell) = sweep.cells.iter_mut().find(|c| c.key == key) else {
                return;
            };
            if cell.status == CellStatus::Done {
                return; // idempotent: journal already has it
            }
            let record = cell_record_fenced(&key, cell.hash, result, lease.gen);
            if let Err(e) = sweep.journal.append(&record) {
                sweep.status = SweepStatus::Failed(format!("journal append: {e}"));
                return;
            }
            cell.status = CellStatus::Done;
        }
        WorkerEvent::Err {
            key,
            error,
            gen: fence,
        } => {
            let Some(lease) = proc.lease.take() else {
                return;
            };
            if lease.key != key {
                proc.lease = Some(lease);
                return;
            }
            if fence.is_some_and(|g| g != lease.gen) {
                proc.lease = Some(lease);
                obs::counter_add("sweepd.cells.fenced", 1);
                return;
            }
            let name = proc.display_name(slot_idx);
            let reason = format!("worker {name}: {error}");
            charge_attempt(cfg, st, lease.sweep_id, &key, &reason);
        }
        WorkerEvent::Interrupted { key } => {
            // The worker persisted the in-flight checkpoint and is
            // exiting; the cell goes back to pending without charging
            // an attempt (a cancelled lease was already charged when
            // the timeout fired).
            if let Some(lease) = proc.lease.take() {
                if lease.key == key {
                    if let Some(sweep) = st.sweeps.get_mut(&lease.sweep_id) {
                        if let Some(cell) = sweep.cells.iter_mut().find(|c| c.key == key) {
                            if cell.status == CellStatus::Leased {
                                cell.status = CellStatus::Pending;
                            }
                        }
                    }
                } else {
                    proc.lease = Some(lease);
                }
            }
        }
        WorkerEvent::Eof => {
            // Local: the reap pass collects the exit status, and the
            // heartbeat deadline covers a process that closed stdout
            // but lingers. Remote with no lease: a clean disconnect —
            // retire the slot now instead of waiting out the deadline.
            // A *leased* remote keeps its slot: the heartbeat deadline
            // is the reconnect grace window.
            let retire = proc.is_remote() && proc.lease.is_none();
            if retire {
                if let Some(mut p) = st.slots[slot_idx].proc.take() {
                    if let Some(session) = p.session().map(str::to_string) {
                        st.sessions.remove(&session);
                    }
                    p.terminate();
                }
            }
        }
    }
}

/// Charges a failed attempt against a cell: journals the failure,
/// returns the cell to pending within budget, otherwise fails the cell
/// and its sweep.
fn charge_attempt(cfg: &DaemonConfig, st: &mut State, sweep_id: u64, key: &str, reason: &str) {
    let Some(sweep) = st.sweeps.get_mut(&sweep_id) else {
        return;
    };
    let budget = sweep.retry_budget(cfg);
    let Some(cell) = sweep.cells.iter_mut().find(|c| c.key == key) else {
        return;
    };
    if cell.status == CellStatus::Done {
        return;
    }
    let attempt = cell.attempts;
    cell.attempts += 1;
    let _ = sweep.journal.append_failed(&FailRecord {
        key: key.to_string(),
        attempt,
        error: reason.to_string(),
    });
    if cell.attempts > budget {
        cell.status = CellStatus::Failed;
        sweep.status = SweepStatus::Failed(format!(
            "cell {key:?} exhausted its retry budget ({budget}): {reason}"
        ));
    } else {
        cell.status = CellStatus::Pending;
    }
}

/// Tears down a slot's link after a death or forced kill: journals the
/// orphaned lease, requeues its cell (crash migration), schedules a
/// backed-off respawn (local slots; a retired remote slot waits for
/// its worker to redial, which lands in a fresh slot).
fn kill_slot(cfg: &DaemonConfig, st: &mut State, idx: usize, reason: &str, now: Instant) {
    let Some(mut proc) = st.slots[idx].proc.take() else {
        return;
    };
    if let Some(session) = proc.session().map(str::to_string) {
        st.sessions.remove(&session);
    }
    proc.terminate();
    if let Some(lease) = proc.lease.take() {
        obs::counter_add("sweepd.cells.migrated", 1);
        charge_attempt(
            cfg,
            st,
            lease.sweep_id,
            &lease.key,
            &format!("{reason} while holding the lease"),
        );
    }
    let slot = &mut st.slots[idx];
    let attempt = slot.deaths;
    slot.deaths = slot.deaths.saturating_add(1);
    slot.respawn_after = now + Duration::from_millis(slot.backoff.delay(attempt));
}

/// Sheds every running sweep except the single highest-priority one
/// while the fleet is below its floor.
fn shed_low_priority(cfg: &DaemonConfig, st: &mut State, alive: usize) {
    let mut running: Vec<(i64, u64)> = st
        .sweeps
        .values()
        .filter(|s| s.status == SweepStatus::Running)
        .map(|s| (s.manifest.priority, s.id))
        .collect();
    if running.len() <= 1 {
        return;
    }
    // Keep the highest priority (ties: oldest id); shed the rest.
    running.sort_by_key(|&(priority, id)| (std::cmp::Reverse(priority), id));
    for &(priority, id) in &running[1..] {
        let reason = format!(
            "shed under fleet degradation: {alive} worker(s) alive, floor is {}; \
             priority {priority} lost to priority {}",
            cfg.fleet_floor, running[0].0
        );
        if let Some(sweep) = st.sweeps.get_mut(&id) {
            sweep.status = SweepStatus::Shed(reason);
            obs::counter_add("sweepd.sweeps.shed", 1);
        }
    }
}

/// Moves completed sweeps into (and out of) the finalize pass.
fn advance_sweeps(cfg: &DaemonConfig, st: &mut State) {
    for sweep in st.sweeps.values_mut() {
        match sweep.status {
            SweepStatus::Running if sweep.cells.iter().all(|c| c.status == CellStatus::Done) => {
                if sweep.manifest.finalize {
                    match spawn_finalize(cfg, sweep) {
                        Ok(child) => {
                            sweep.finalize_child = Some(child);
                            sweep.status = SweepStatus::Finalizing;
                        }
                        Err(e) => {
                            sweep.status =
                                SweepStatus::Failed(format!("spawning finalize pass: {e}"));
                        }
                    }
                } else {
                    sweep.status = SweepStatus::Done;
                    gc_inflight(&sweep.dir);
                }
            }
            SweepStatus::Running => {}
            SweepStatus::Finalizing => {
                let Some(child) = sweep.finalize_child.as_mut() else {
                    sweep.status = SweepStatus::Failed("finalize child lost".into());
                    continue;
                };
                match child.try_wait() {
                    Ok(Some(status)) if status.success() => {
                        sweep.finalize_child = None;
                        sweep.status = SweepStatus::Done;
                        gc_inflight(&sweep.dir);
                    }
                    Ok(Some(status)) => {
                        sweep.finalize_child = None;
                        sweep.status =
                            SweepStatus::Failed(format!("finalize pass exited with {status}"));
                    }
                    Ok(None) => {}
                    Err(e) => {
                        sweep.finalize_child = None;
                        sweep.status = SweepStatus::Failed(format!("waiting on finalize: {e}"));
                    }
                }
            }
            _ => {}
        }
    }
}

/// Removes orphaned `inflight-<key>.ckpt` files under a finished or
/// cancelled sweep's directory. Returns the number removed.
fn gc_inflight(dir: &std::path::Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0u64;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        if name.starts_with("inflight-")
            && name.ends_with(".ckpt")
            && std::fs::remove_file(entry.path()).is_ok()
        {
            removed += 1;
        }
    }
    if removed > 0 {
        obs::counter_add("sweepd.gc.removed", removed);
    }
    removed
}

/// The finalize pass: a single-process resume over the sweep journal,
/// producing the standard artifacts byte-identically to an
/// uninterrupted in-process run.
fn spawn_finalize(cfg: &DaemonConfig, sweep: &Sweep) -> std::io::Result<Child> {
    let cmd = &cfg.worker_cmd;
    Command::new(&cmd[0])
        .args(&cmd[1..])
        .arg(&sweep.manifest.experiment)
        .arg("--resume")
        .arg(&sweep.dir)
        .arg("--seed")
        .arg(sweep.manifest.seed.to_string())
        .arg("--ckpt-interval")
        .arg(cfg.ckpt_interval.to_string())
        .arg("--jobs")
        .arg("1")
        .current_dir(&sweep.dir)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
}

/// Leases pending cells to idle workers, spawning or rebinding workers
/// as needed. Sweeps are served in priority order.
fn assign_work(
    cfg: &DaemonConfig,
    st: &mut State,
    events_tx: &Sender<(usize, u64, WorkerEvent)>,
    now: Instant,
) {
    let mut order: Vec<(i64, u64)> = st
        .sweeps
        .values()
        .filter(|s| s.has_pending())
        .map(|s| (s.manifest.priority, s.id))
        .collect();
    order.sort_by_key(|&(priority, id)| (std::cmp::Reverse(priority), id));

    for (_, sweep_id) in order {
        loop {
            if !st.sweeps.get(&sweep_id).is_some_and(Sweep::has_pending) {
                break;
            }
            // A slot for this sweep: an idle live worker already bound
            // to it, else an idle remote worker whose sweep no longer
            // needs it (rebinding is free — run commands to remote
            // workers are self-contained), else an empty local slot
            // past its backoff, else an idle local worker bound to a
            // sweep that no longer needs it.
            let bound_idle = st.slots.iter().position(|s| {
                s.proc
                    .as_ref()
                    .is_some_and(|p| p.lease.is_none() && p.bound_sweep == sweep_id)
            });
            let idx = if let Some(idx) = bound_idle {
                idx
            } else if let Some(idx) = st.slots.iter().position(|s| {
                s.proc.as_ref().is_some_and(|p| {
                    p.is_remote()
                        && p.lease.is_none()
                        && !st
                            .sweeps
                            .get(&p.bound_sweep)
                            .is_some_and(Sweep::has_pending)
                })
            }) {
                if let Some(p) = st.slots[idx].proc.as_mut() {
                    p.bound_sweep = sweep_id;
                }
                idx
            } else if let Some(idx) = st.slots.iter().position(|s| {
                s.kind == SlotKind::Local && s.proc.is_none() && now >= s.respawn_after
            }) {
                let dir = st.sweeps[&sweep_id].dir.clone();
                let seed = st.sweeps[&sweep_id].manifest.seed;
                match spawn_worker(cfg, idx, sweep_id, &dir, seed, st, events_tx) {
                    Ok(()) => idx,
                    Err(e) => {
                        // Spawn failure counts as a death: back off and
                        // let a later tick retry.
                        let slot = &mut st.slots[idx];
                        let attempt = slot.deaths;
                        slot.deaths = slot.deaths.saturating_add(1);
                        slot.respawn_after =
                            now + Duration::from_millis(slot.backoff.delay(attempt));
                        eprintln!("sweepd: spawning worker {}: {e}", worker_name(idx));
                        break;
                    }
                }
            } else if let Some(idx) = st.slots.iter().position(|s| {
                s.proc.as_ref().is_some_and(|p| {
                    !p.is_remote()
                        && p.lease.is_none()
                        && !st
                            .sweeps
                            .get(&p.bound_sweep)
                            .is_some_and(Sweep::has_pending)
                })
            }) {
                // Rebind: retire the idle local worker; the slot
                // respawns for this sweep on the next tick.
                if let Some(proc) = st.slots[idx].proc.as_mut() {
                    let _ = proc.send_line("{\"op\":\"exit\"}");
                }
                if let Some(mut proc) = st.slots[idx].proc.take() {
                    proc.terminate();
                }
                st.slots[idx].respawn_after = now;
                break;
            } else {
                break; // fleet saturated
            };

            lease_next(cfg, st, sweep_id, idx);
        }
    }
}

/// Leases the sweep's next pending cell to slot `idx` and sends the
/// fence-tagged run command down the worker's link. Remote run
/// commands are self-contained (dir/seed/ckpt-interval inline), so a
/// delayed or reordered frame can never leave a worker mis-bound.
fn lease_next(cfg: &DaemonConfig, st: &mut State, sweep_id: u64, idx: usize) {
    let fence = st.next_fence;
    let (worker, remote) = match st.slots[idx].proc.as_ref() {
        Some(p) => (p.display_name(idx), p.is_remote()),
        None => return,
    };
    let Some(sweep) = st.sweeps.get_mut(&sweep_id) else {
        return;
    };
    let exp = sweep.manifest.experiment.clone();
    let seed = sweep.manifest.seed;
    let dir = sweep.dir.display().to_string();
    let Some(cell) = sweep
        .cells
        .iter_mut()
        .find(|c| c.status == CellStatus::Pending)
    else {
        return;
    };
    let lease = LeaseRecord {
        key: cell.key.clone(),
        worker,
        attempt: cell.attempts,
        gen: Some(fence),
    };
    if let Err(e) = sweep.journal.append_lease(&lease) {
        sweep.status = SweepStatus::Failed(format!("journal lease append: {e}"));
        return;
    }
    cell.status = CellStatus::Leased;
    let key = cell.key.clone();
    st.next_fence += 1;
    let Some(proc) = st.slots[idx].proc.as_mut() else {
        return;
    };
    let json = |s: &str| serde_json::to_string(&s).unwrap_or_else(|_| "\"\"".into());
    let cmd = if remote {
        format!(
            "{{\"op\":\"run\",\"exp\":{},\"key\":{},\"gen\":{fence},\"dir\":{},\"seed\":{seed},\"ckpt_interval\":{}}}",
            json(&exp),
            json(&key),
            json(&dir),
            cfg.ckpt_interval,
        )
    } else {
        format!(
            "{{\"op\":\"run\",\"exp\":{},\"key\":{},\"gen\":{fence}}}",
            json(&exp),
            json(&key),
        )
    };
    let sent = proc.send_line(&cmd);
    proc.lease = Some(LeaseInfo {
        sweep_id,
        key,
        started: Instant::now(),
        gen: fence,
    });
    if sent.is_err() {
        // Broken pipe: the worker is dying; the reap pass (or the
        // heartbeat deadline, for a remote link) will journal the
        // orphaned lease and requeue the cell.
    }
}

/// Spawns a worker bound to one sweep and wires its reader thread.
fn spawn_worker(
    cfg: &DaemonConfig,
    idx: usize,
    sweep_id: u64,
    dir: &std::path::Path,
    seed: u64,
    st: &mut State,
    events_tx: &Sender<(usize, u64, WorkerEvent)>,
) -> std::io::Result<()> {
    let cmd = &cfg.worker_cmd;
    let mut child = Command::new(&cmd[0])
        .args(&cmd[1..])
        .arg("--worker")
        .arg("--sweep-dir")
        .arg(dir)
        .arg("--seed")
        .arg(seed.to_string())
        .arg("--ckpt-interval")
        .arg(cfg.ckpt_interval.to_string())
        .arg("--jobs")
        .arg("1")
        .arg("--heartbeat-ms")
        .arg(cfg.heartbeat_ms.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    let pid = child.id();
    let slot = &mut st.slots[idx];
    let gen = slot.next_gen;
    slot.next_gen += 1;
    slot.restarts = slot.restarts.saturating_add(u64::from(gen > 0));
    if gen > 0 {
        obs::counter_add("sweepd.worker.restarts", 1);
    }
    let last_line = Arc::new(Mutex::new(Instant::now()));
    spawn_reader(idx, gen, stdout, Arc::clone(&last_line), events_tx.clone());
    slot.proc = Some(Proc {
        link: Link::Child { child, pid, stdin },
        last_line,
        gen,
        bound_sweep: sweep_id,
        lease: None,
        drain_signaled: false,
    });
    Ok(())
}

fn spawn_reader(
    idx: usize,
    gen: u64,
    stdout: ChildStdout,
    last_line: Arc<Mutex<Instant>>,
    tx: Sender<(usize, u64, WorkerEvent)>,
) {
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if let Ok(mut t) = last_line.lock() {
                *t = Instant::now();
            }
            if let Some(event) = parse_event(&line) {
                if tx.send((idx, gen, event)).is_err() {
                    return;
                }
            }
        }
        let _ = tx.send((idx, gen, WorkerEvent::Eof));
    });
}

/// Reader thread for a remote link: reassembles frames with the shared
/// [`wire`] codec, passes each through the ingress fault injector, and
/// timestamps only *delivered* frames — so a scripted partition window
/// starves the liveness timestamp exactly like a real one. A protocol
/// violation (oversized frame, invalid UTF-8) drops the connection.
fn spawn_remote_reader(
    idx: usize,
    gen: u64,
    stream: TcpStream,
    leftover: Vec<u8>,
    mut netem: Option<Netem>,
    last_line: Arc<Mutex<Instant>>,
    tx: Sender<(usize, u64, WorkerEvent)>,
) {
    std::thread::spawn(move || {
        let mut stream = stream;
        let mut buf = leftover;
        let mut chunk = [0u8; 4096];
        'conn: loop {
            loop {
                let step = match wire::parse_frame(&buf) {
                    Ok(wire::FrameStatus::Complete { line, consumed }) => {
                        Some((line.as_bytes().to_vec(), consumed))
                    }
                    Ok(wire::FrameStatus::Incomplete) => None,
                    Err(_) => break 'conn,
                };
                let Some((frame, consumed)) = step else { break };
                buf.drain(..consumed);
                let delivered = match netem.as_mut() {
                    Some(n) => n.apply(frame),
                    None => vec![frame],
                };
                for f in delivered {
                    if let Ok(mut t) = last_line.lock() {
                        *t = Instant::now();
                    }
                    let Ok(text) = String::from_utf8(f) else {
                        continue; // a corrupted frame still proved liveness
                    };
                    if let Some(event) = parse_event(&text) {
                        if tx.send((idx, gen, event)).is_err() {
                            return;
                        }
                    }
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        let _ = tx.send((idx, gen, WorkerEvent::Eof));
    });
}

/// Drains the fleet: one drain signal per worker (SIGTERM for locals,
/// the exit op for remotes — cooperative checkpoint + exit 3),
/// escalate to a hard kill past the grace window.
fn drain_fleet(cfg: &DaemonConfig, st: &mut State, now: Instant) {
    let started = *st.drain_started.get_or_insert(now);
    let escalate = now.duration_since(started) > cfg.drain_grace;
    for idx in 0..st.slots.len() {
        if st.slots[idx].proc.is_none() {
            continue;
        }
        if escalate {
            let reason = format!("worker {} killed after drain grace", worker_name(idx));
            kill_slot(cfg, st, idx, &reason, now);
        } else if let Some(proc) = st.slots[idx].proc.as_mut() {
            proc.signal_drain();
        }
    }
}

/// Sends SIGTERM (cooperative drain) to a process.
#[cfg(unix)]
fn send_sigterm(pid: u32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;
    // Best-effort: a vanished pid is already what we wanted.
    unsafe {
        let _ = kill(pid as i32, SIGTERM);
    }
}

#[cfg(not(unix))]
fn send_sigterm(_pid: u32) {}

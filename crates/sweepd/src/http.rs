//! Minimal HTTP/1.1 request parsing and response rendering over raw
//! bytes.
//!
//! `sweepd` speaks hand-rolled HTTP over `std::net` — the build has no
//! network crates — so the parser here is the daemon's entire exposure
//! to untrusted input. It is written as a pure function over a byte
//! buffer ([`parse_request`]) precisely so the fuzz harness can drive
//! it without sockets, and it upholds two contracts:
//!
//! * **No panics.** Any byte sequence either parses, is reported as
//!   [`Incomplete`](ParseStatus::Incomplete) (a valid prefix), or
//!   produces a structured [`HttpError`] carrying the 4xx/5xx status
//!   the server replies with.
//! * **Hard resource caps.** Request line ≤ 8 KB (414), ≤ 64 header
//!   lines of ≤ 8 KB each (431), body ≤ 1 MB whether declared via
//!   `Content-Length` or `Transfer-Encoding: chunked` (413). A peer
//!   cannot make the daemon buffer unbounded input.

/// Maximum request-line length in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Maximum single header line length in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum request body length in bytes (declared or chunk-decoded).
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, e.g. `GET`.
    pub method: String,
    /// Request target, e.g. `/sweeps/3`.
    pub target: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body bytes (chunked transfer already reassembled).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of parsing a (possibly partial) buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseStatus {
    /// A full request was parsed; `consumed` bytes were used.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer the request occupied.
        consumed: usize,
    },
    /// The buffer is a valid prefix of a request; read more bytes.
    Incomplete,
}

/// A malformed or over-limit request, with the HTTP status to reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Status code for the response (4xx/5xx).
    pub status: u16,
    /// Human-readable reason, returned in the JSON error body.
    pub reason: String,
}

impl HttpError {
    fn new(status: u16, reason: impl Into<String>) -> Self {
        HttpError {
            status,
            reason: reason.into(),
        }
    }
}

/// Canonical reason phrase for the status codes the daemon emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Finds the first line terminator at or after `from`, returning the
/// line's byte range (exclusive of the terminator) and the index just
/// past it. Accepts both `\r\n` and bare `\n`.
fn find_line(buf: &[u8], from: usize) -> Option<(std::ops::Range<usize>, usize)> {
    let nl = buf[from..].iter().position(|&b| b == b'\n')? + from;
    let end = if nl > from && buf[nl - 1] == b'\r' {
        nl - 1
    } else {
        nl
    };
    Some((from..end, nl + 1))
}

fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Parses one HTTP/1.1 request from the front of `buf`.
///
/// Returns [`ParseStatus::Incomplete`] while the buffer is a valid
/// prefix (caller reads more and retries on the grown buffer).
///
/// # Errors
///
/// Returns an [`HttpError`] with the status the server should send:
/// 400 for malformed syntax (bad tokens, bad `Content-Length`, bad
/// chunk framing, conflicting framing headers), 413/414/431 for cap
/// violations, 505 for non-HTTP/1.x versions.
pub fn parse_request(buf: &[u8]) -> Result<ParseStatus, HttpError> {
    // Request line.
    let Some((line_range, mut pos)) = find_line(buf, 0) else {
        if buf.len() > MAX_REQUEST_LINE {
            return Err(HttpError::new(414, "request line exceeds 8KB"));
        }
        return Ok(ParseStatus::Incomplete);
    };
    if line_range.len() > MAX_REQUEST_LINE {
        return Err(HttpError::new(414, "request line exceeds 8KB"));
    }
    let line = std::str::from_utf8(&buf[line_range])
        .map_err(|_| HttpError::new(400, "request line is not UTF-8"))?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::new(
                400,
                "request line must be `METHOD target HTTP/1.x`",
            ))
        }
    };
    if !is_token(method) {
        return Err(HttpError::new(400, "malformed method token"));
    }
    if target.is_empty() || target.bytes().any(|b| b <= b' ' || b == 0x7f) {
        return Err(HttpError::new(400, "malformed request target"));
    }
    if !(version == "HTTP/1.1" || version == "HTTP/1.0") {
        return Err(HttpError::new(
            505,
            format!("unsupported protocol version {version:?}"),
        ));
    }

    // Header block.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let Some((range, next)) = find_line(buf, pos) else {
            if buf.len() - pos > MAX_HEADER_LINE {
                return Err(HttpError::new(431, "header line exceeds 8KB"));
            }
            return Ok(ParseStatus::Incomplete);
        };
        if range.len() > MAX_HEADER_LINE {
            return Err(HttpError::new(431, "header line exceeds 8KB"));
        }
        pos = next;
        if range.is_empty() {
            break; // end of headers
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::new(431, "more than 64 header lines"));
        }
        let line = std::str::from_utf8(&buf[range])
            .map_err(|_| HttpError::new(400, "header line is not UTF-8"))?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(
                400,
                format!("header line without ':': {line:?}"),
            ));
        };
        if !is_token(name) {
            return Err(HttpError::new(
                400,
                format!("malformed header name {name:?}"),
            ));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body framing.
    let content_length = headers.iter().find(|(n, _)| n == "content-length");
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    if content_length.is_some() && chunked {
        return Err(HttpError::new(
            400,
            "both Content-Length and Transfer-Encoding: chunked",
        ));
    }
    let body = if chunked {
        match decode_chunked(buf, pos)? {
            Some((body, end)) => {
                pos = end;
                body
            }
            None => return Ok(ParseStatus::Incomplete),
        }
    } else if let Some((_, v)) = content_length {
        let len: usize = v
            .parse()
            .map_err(|_| HttpError::new(400, format!("bad Content-Length {v:?}")))?;
        if len > MAX_BODY {
            return Err(HttpError::new(413, "body exceeds 1MB"));
        }
        if buf.len() < pos + len {
            return Ok(ParseStatus::Incomplete);
        }
        let body = buf[pos..pos + len].to_vec();
        pos += len;
        body
    } else {
        Vec::new()
    };

    Ok(ParseStatus::Complete {
        request: Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body,
        },
        consumed: pos,
    })
}

/// Decodes a chunked body starting at `pos`. Returns `None` while the
/// framing is an incomplete (but so far valid) prefix.
fn decode_chunked(buf: &[u8], mut pos: usize) -> Result<Option<(Vec<u8>, usize)>, HttpError> {
    let mut body = Vec::new();
    loop {
        let Some((range, after_size)) = find_line(buf, pos) else {
            if buf.len() - pos > 32 {
                return Err(HttpError::new(400, "oversized chunk-size line"));
            }
            return Ok(None);
        };
        let size_line = std::str::from_utf8(&buf[range])
            .map_err(|_| HttpError::new(400, "chunk-size line is not UTF-8"))?;
        // Chunk extensions (";...") are tolerated and ignored.
        let size_str = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| HttpError::new(400, format!("bad chunk size {size_str:?}")))?;
        if body.len() + size > MAX_BODY {
            return Err(HttpError::new(413, "chunked body exceeds 1MB"));
        }
        pos = after_size;
        if size == 0 {
            // Trailer section: tolerate none; expect the final blank line.
            let Some((trailer, end)) = find_line(buf, pos) else {
                return Ok(None);
            };
            if !trailer.is_empty() {
                return Err(HttpError::new(400, "chunked trailers are not supported"));
            }
            return Ok(Some((body, end)));
        }
        if buf.len() < pos + size {
            return Ok(None);
        }
        body.extend_from_slice(&buf[pos..pos + size]);
        pos += size;
        // Chunk data must be followed by its own CRLF.
        let Some((sep, next)) = find_line(buf, pos) else {
            return Ok(None);
        };
        if !sep.is_empty() {
            return Err(HttpError::new(400, "chunk data not followed by CRLF"));
        }
        pos = next;
    }
}

/// Renders a response with a `Content-Length` body and
/// `Connection: close` (the daemon serves one request per connection).
///
/// Invariant: **every** response — success or error, any status —
/// goes through this function, so `Connection: close` is always
/// explicit. Without it, an HTTP/1.1 client is entitled to assume
/// keep-alive and would hang waiting for a second response on a
/// connection the daemon is about to close. Regression-tested in
/// `connection_close_is_explicit_on_every_path` below; [`render_error`]
/// must keep delegating here rather than formatting its own head.
pub fn render_response(status: u16, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        content_type,
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Renders the structured JSON error body for an [`HttpError`].
pub fn render_error(err: &HttpError) -> Vec<u8> {
    let body = format!(
        "{{\"error\":{{\"status\":{},\"reason\":{}}}}}\n",
        err.status,
        serde_json::to_string(&err.reason).unwrap_or_else(|_| "\"\"".into())
    );
    render_response(err.status, "application/json", body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> Request {
        match parse_request(buf).expect("parse") {
            ParseStatus::Complete { request, .. } => request,
            ParseStatus::Incomplete => panic!("incomplete"),
        }
    }

    #[test]
    fn parses_get_without_body() {
        let req = complete(b"GET /sweeps/3 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/sweeps/3");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length() {
        let req = complete(b"POST /sweeps HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn parses_chunked_body() {
        let req = complete(b"POST /sweeps HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n");
        assert_eq!(req.body, b"wikipedia");
    }

    #[test]
    fn partial_requests_ask_for_more() {
        for prefix in [
            &b"POST /swee"[..],
            b"POST /sweeps HTTP/1.1\r\nContent-Le",
            b"POST /sweeps HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"a\"",
            b"POST /sweeps HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwi",
        ] {
            assert_eq!(
                parse_request(prefix).expect("prefix"),
                ParseStatus::Incomplete
            );
        }
    }

    #[test]
    fn caps_are_enforced_with_structured_status() {
        let long_line = vec![b'A'; MAX_REQUEST_LINE + 2];
        assert_eq!(parse_request(&long_line).unwrap_err().status, 414);

        let mut many_headers = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            many_headers.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        many_headers.extend_from_slice(b"\r\n");
        assert_eq!(parse_request(&many_headers).unwrap_err().status, 431);

        let body_too_big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(
            parse_request(body_too_big.as_bytes()).unwrap_err().status,
            413
        );
    }

    #[test]
    fn malformed_syntax_is_400() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"G@T / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 1\r\nTransfer-Encoding: chunked\r\n\r\nx",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n\r\n",
        ] {
            assert_eq!(parse_request(bad).unwrap_err().status, 400, "{bad:?}");
        }
        assert_eq!(
            parse_request(b"GET / HTTP/2\r\n\r\n").unwrap_err().status,
            505
        );
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = complete(b"GET /healthz HTTP/1.1\nHost: x\n\n");
        assert_eq!(req.target, "/healthz");
    }

    /// Counts occurrences of `needle` in the response head (the bytes
    /// before the blank line), case-sensitively — header names are
    /// emitted by us, so their casing is fixed.
    fn head_count(response: &[u8], needle: &str) -> usize {
        let text = String::from_utf8_lossy(response);
        let head = text.split("\r\n\r\n").next().unwrap_or("");
        head.matches(needle).count()
    }

    #[test]
    fn connection_close_is_explicit_on_every_path() {
        // Success path, empty and non-empty bodies.
        for body in [&b""[..], b"{\"ok\":true}\n"] {
            let resp = render_response(200, "application/json", body);
            assert_eq!(head_count(&resp, "Connection: close"), 1);
            assert_eq!(head_count(&resp, "Content-Length:"), 1);
        }
        // Error path, across every status the daemon emits: the error
        // renderer must not grow its own head formatting that could
        // drop the connection header.
        for status in [400u16, 404, 405, 409, 413, 414, 431, 505] {
            let resp = render_error(&HttpError::new(status, "reason"));
            assert_eq!(
                head_count(&resp, "Connection: close"),
                1,
                "status {status} must carry exactly one Connection: close"
            );
            assert!(
                resp.starts_with(format!("HTTP/1.1 {status} ").as_bytes()),
                "status line for {status}"
            );
        }
    }

    #[test]
    fn error_responses_end_after_content_length_bytes() {
        // A client honoring Content-Length + Connection: close must be
        // able to read the body exactly: no trailing bytes after it.
        let resp = render_error(&HttpError::new(400, "bad"));
        let text = String::from_utf8(resp).expect("utf8 response");
        let (head, body) = text.split_once("\r\n\r\n").expect("blank line");
        let declared: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content-length header")
            .parse()
            .expect("numeric content-length");
        assert_eq!(body.len(), declared);
        assert!(body.ends_with('\n'));
    }
}

//! `sweepd` — the sweep-service daemon binary.
//!
//! ```text
//! sweepd --worker-cmd <path> [OPTIONS]
//!
//! Options:
//!   --worker-cmd <path>          worker/grid/finalize command (the
//!                                metanmp-experiments binary); repeatable
//!                                to pass leading arguments
//!   --listen <addr>              bind address (default 127.0.0.1:7377)
//!   --workers <n>                worker slots (default 2)
//!   --state-dir <dir>            per-sweep state root (default ./sweepd-state)
//!   --heartbeat-ms <n>           worker heartbeat period (default 100)
//!   --heartbeat-deadline-ms <n>  liveness deadline (default 2000)
//!   --fleet-floor <n>            minimum healthy fleet before shedding
//!                                low-priority sweeps (default 1)
//!   --cell-timeout <s>           default per-cell wall-clock budget
//!                                (default unbounded; manifests override)
//!   --retry-budget <n>           default per-cell retry budget (default 2)
//!   --ckpt-interval <n>          checkpoint granularity for workers and
//!                                the finalize pass (default 256)
//!   --backoff-seed <u64>         jitter seed for worker respawn backoff
//!   --drain-grace-ms <n>         SIGTERM→SIGKILL escalation window for
//!                                draining workers (default 10000)
//!   --worker-listen <addr>       also accept remote workers over TCP on
//!                                this address (off by default)
//!   --netem <file>               CHS1 scenario whose net* directives
//!                                script deterministic network faults on
//!                                remote worker links
//! ```
//!
//! Exit codes follow the repo contract: 0 = drained with all sweeps
//! finished, 3 = drained with resumable work remaining (rerun workers
//! against the surviving state directories), 2 = usage, 1 = failure.
//!
//! SIGINT/SIGTERM begin a graceful drain: leasing stops, workers are
//! SIGTERMed so in-flight cells persist their checkpoints, and the
//! daemon exits once the fleet is reaped.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sweepd::{server, Daemon, DaemonConfig};

/// Drain request from SIGINT/SIGTERM (async-signal-safe store only).
static DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        DRAIN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() {
    eprintln!("usage: sweepd --worker-cmd <path> [OPTIONS]");
    eprintln!("  --listen <addr>              bind address (default 127.0.0.1:7377)");
    eprintln!("  --workers <n>                worker slots (default 2)");
    eprintln!("  --state-dir <dir>            state root (default ./sweepd-state)");
    eprintln!("  --heartbeat-ms <n>           worker heartbeat period (default 100)");
    eprintln!("  --heartbeat-deadline-ms <n>  liveness deadline (default 2000)");
    eprintln!("  --fleet-floor <n>            minimum healthy fleet (default 1)");
    eprintln!("  --cell-timeout <s>           default per-cell budget (default unbounded)");
    eprintln!("  --retry-budget <n>           default retry budget (default 2)");
    eprintln!("  --ckpt-interval <n>          checkpoint granularity (default 256)");
    eprintln!("  --backoff-seed <u64>         respawn backoff jitter seed");
    eprintln!("  --drain-grace-ms <n>         drain escalation window (default 10000)");
    eprintln!("  --worker-listen <addr>       accept remote TCP workers on this address");
    eprintln!("  --netem <file>               CHS1 net* scenario for remote-link faults");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }

    let mut listen = "127.0.0.1:7377".to_string();
    let mut worker_listen: Option<String> = None;
    let mut worker_cmd: Vec<String> = Vec::new();
    let mut cfg = DaemonConfig::new(Vec::new(), "sweepd-state".into());
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut next = |what: &str| -> Result<String, ExitCode> {
            it.next().ok_or_else(|| {
                eprintln!("{arg_name} requires {what}", arg_name = arg);
                ExitCode::from(2)
            })
        };
        macro_rules! next_u64 {
            () => {
                match next("an unsigned integer") {
                    Ok(v) => match v.parse::<u64>() {
                        Ok(n) => n,
                        Err(_) => {
                            eprintln!("{arg} requires an unsigned integer, got {v:?}");
                            return ExitCode::from(2);
                        }
                    },
                    Err(code) => return code,
                }
            };
        }
        match arg.as_str() {
            "--listen" => match next("an address") {
                Ok(v) => listen = v,
                Err(code) => return code,
            },
            "--worker-cmd" => match next("a path") {
                Ok(v) => worker_cmd.push(v),
                Err(code) => return code,
            },
            "--state-dir" => match next("a directory") {
                Ok(v) => cfg.state_dir = v.into(),
                Err(code) => return code,
            },
            "--workers" => cfg.workers = next_u64!() as usize,
            "--heartbeat-ms" => cfg.heartbeat_ms = next_u64!().max(1),
            "--heartbeat-deadline-ms" => {
                cfg.heartbeat_deadline = Duration::from_millis(next_u64!().max(1));
            }
            "--fleet-floor" => cfg.fleet_floor = next_u64!() as usize,
            "--cell-timeout" => cfg.default_cell_timeout_s = Some(next_u64!().max(1)),
            "--retry-budget" => cfg.default_retry_budget = next_u64!() as u32,
            "--ckpt-interval" => cfg.ckpt_interval = next_u64!().max(1),
            "--backoff-seed" => cfg.backoff_seed = next_u64!(),
            "--drain-grace-ms" => cfg.drain_grace = Duration::from_millis(next_u64!()),
            "--worker-listen" => match next("an address") {
                Ok(v) => worker_listen = Some(v),
                Err(code) => return code,
            },
            "--netem" => match next("a CHS1 scenario file") {
                Ok(path) => {
                    let text = match std::fs::read_to_string(&path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("--netem: reading {path}: {e}");
                            return ExitCode::from(2);
                        }
                    };
                    match faultsim::Scenario::parse(&text) {
                        Ok(s) => cfg.netem = s,
                        Err(e) => {
                            eprintln!("--netem: parsing {path}: {e}");
                            return ExitCode::from(2);
                        }
                    }
                }
                Err(code) => return code,
            },
            _ => {
                eprintln!("unknown option {arg:?}");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    if worker_cmd.is_empty() {
        eprintln!("--worker-cmd is required (point it at the metanmp-experiments binary)");
        usage();
        return ExitCode::from(2);
    }
    cfg.worker_cmd = worker_cmd;
    if let Err(e) = std::fs::create_dir_all(&cfg.state_dir) {
        eprintln!(
            "failed to create state dir {}: {e}",
            cfg.state_dir.display()
        );
        return ExitCode::FAILURE;
    }

    install_signal_handlers();
    let daemon = Daemon::new(cfg);

    if let Some(addr) = worker_listen {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || {
            let served = sweepd::remote::serve_workers(Arc::clone(&daemon), &addr, |bound| {
                eprintln!("sweepd: workers on {bound}");
            });
            if let Err(e) = served {
                eprintln!("sweepd: failed to bind worker listener {addr}: {e}");
                daemon.begin_drain();
            }
        });
    }

    // Supervisor loop: forwards the signal flag into a drain and ticks
    // the fleet. The HTTP server runs on the main thread and returns
    // once the daemon is draining.
    let clean = {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || {
            loop {
                if DRAIN.load(Ordering::SeqCst) {
                    daemon.begin_drain();
                }
                daemon.tick();
                if daemon.draining() && daemon.alive_workers() == 0 {
                    // Let finalize passes and status reads settle.
                    if daemon.run_supervisor(Duration::from_millis(25)) {
                        break true;
                    }
                    break false;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    };

    let served = server::serve(&daemon, &listen, |addr| {
        eprintln!("sweepd: listening on {addr}");
    });
    if let Err(e) = served {
        eprintln!("sweepd: failed to bind {listen}: {e}");
        daemon.begin_drain();
        let _ = clean.join();
        return ExitCode::FAILURE;
    }
    match clean.join() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(3),
        Err(_) => ExitCode::FAILURE,
    }
}

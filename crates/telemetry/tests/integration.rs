//! Integration tests for the enabled backend: span nesting, phase
//! aggregation, and exporter output validated by an independent JSON
//! parser (`serde_json`).
//!
//! The registry is process-global, so everything runs inside a single
//! `#[test]` with `reset()` between scenarios — parallel test threads
//! would otherwise interleave their metrics.

#![cfg(feature = "enabled")]

use telemetry as obs;

#[test]
fn registry_spans_and_exporters() {
    span_nesting_and_ordering();
    phase_totals_aggregate_across_calls();
    sim_slices_land_on_their_own_tracks();
    snapshot_json_round_trips_through_serde();
    chrome_trace_json_round_trips_through_serde();
    checkpoint_merge_restores_metrics();
    scoped_sinks_capture_and_merge_in_order();
}

fn scoped_sinks_capture_and_merge_in_order() {
    obs::reset();
    obs::counter_add("sink.counter", 1);

    // Worker-style capture: nothing lands globally until the merge.
    let ((), a) = obs::scoped_sink(|| {
        obs::counter_add("sink.counter", 10);
        obs::gauge_set("sink.gauge", 1.0);
        obs::hist_record("sink.hist", 8);
        obs::sim_slice("sink.track", "w", 0, 4);
    });
    let ((), b) = obs::scoped_sink(|| {
        obs::counter_add("sink.counter", 100);
        obs::gauge_set("sink.gauge", 2.0);
        obs::hist_record("sink.hist", 16);
    });
    let snap = obs::snapshot();
    assert_eq!(snap.counter("sink.counter"), Some(1));
    assert_eq!(snap.gauge("sink.gauge"), None);

    // Canonical-order merge: counters add, gauges last-merged-wins.
    obs::merge_sink(a);
    obs::merge_sink(b);
    let snap = obs::snapshot();
    assert_eq!(snap.counter("sink.counter"), Some(111));
    assert_eq!(snap.gauge("sink.gauge"), Some(2.0));
    assert_eq!(snap.histogram("sink.hist").unwrap().count, 2);
    let trace = obs::trace_data();
    assert!(
        trace
            .thread_names
            .iter()
            .any(|(_, _, name)| name == "sink.track"),
        "sim tracks are re-keyed into the destination registry"
    );

    // The deterministic exporter strips the wall-clock phases section.
    {
        let _s = obs::span("sink.phase", "test");
    }
    let det: serde_json::Value =
        serde_json::from_str(&obs::deterministic_snapshot_json()).expect("valid JSON");
    assert_eq!(det["phases"].as_array().map(Vec::len), Some(0));
    assert!(det["counters"]["sink.counter"].as_u64().is_some());
}

fn checkpoint_merge_restores_metrics() {
    obs::reset();
    obs::counter_add("ckpt.counter", 41);
    obs::gauge_set("ckpt.gauge", 1.25);
    for v in [1u64, 7, 7, 4096] {
        obs::hist_record("ckpt.hist", v);
    }
    {
        let _s = obs::span("ckpt.phase", "test");
    }
    let image = obs::checkpoint_json();
    let before = obs::snapshot();

    // A fresh process (registry) merges the image and continues.
    obs::reset();
    obs::counter_add("ckpt.counter", 1);
    obs::gauge_set("ckpt.gauge", 9.0); // live value must win
    obs::merge_checkpoint_json(&image).expect("image merges");
    let after = obs::snapshot();
    assert_eq!(after.counter("ckpt.counter"), Some(42));
    assert_eq!(after.gauge("ckpt.gauge"), Some(9.0));
    let (h0, h1) = (
        before.histogram("ckpt.hist").unwrap(),
        after.histogram("ckpt.hist").unwrap(),
    );
    assert_eq!(h0, h1, "histogram survives losslessly");
    let phase = after
        .phases
        .iter()
        .find(|p| p.name == "ckpt.phase")
        .expect("phase totals carried over");
    assert_eq!(phase.calls, 1);

    // Garbage is rejected without touching the registry.
    assert!(obs::merge_checkpoint_json("not json").is_err());
    assert_eq!(obs::snapshot(), after);
}

fn span_nesting_and_ordering() {
    obs::reset();
    {
        let _outer = obs::span("outer", "test");
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let _inner = obs::span("inner", "test");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    let trace = obs::trace_data();
    let inner = trace
        .events
        .iter()
        .find(|e| e.name == "inner")
        .expect("inner span recorded");
    let outer = trace
        .events
        .iter()
        .find(|e| e.name == "outer")
        .expect("outer span recorded");
    // Guards drop inner-first, so the inner event is recorded first.
    let inner_idx = trace.events.iter().position(|e| e.name == "inner").unwrap();
    let outer_idx = trace.events.iter().position(|e| e.name == "outer").unwrap();
    assert!(inner_idx < outer_idx, "inner must be recorded before outer");
    // The inner interval is contained in the outer interval.
    assert!(outer.ts_us <= inner.ts_us, "outer starts before inner");
    assert!(
        inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us,
        "inner ends before outer ({} + {} vs {} + {})",
        inner.ts_us,
        inner.dur_us,
        outer.ts_us,
        outer.dur_us
    );
    assert!(outer.dur_us >= inner.dur_us);
    // Same thread → same tid; both on the wall-clock pid.
    assert_eq!(inner.tid, outer.tid);
    assert_eq!(inner.pid, outer.pid);
}

fn phase_totals_aggregate_across_calls() {
    obs::reset();
    for _ in 0..3 {
        let _s = obs::span("phase.a", "test");
    }
    {
        let _s = obs::span("phase.b", "test");
    }
    let snap = obs::snapshot();
    let names: Vec<&str> = snap.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["phase.a", "phase.b"], "phases sorted by name");
    assert_eq!(snap.phases[0].calls, 3);
    assert_eq!(snap.phases[1].calls, 1);
    assert!(snap.phases[0].total_ms >= 0.0);
}

fn sim_slices_land_on_their_own_tracks() {
    obs::reset();
    obs::sim_slice("rank 0", "compute", 100, 50);
    obs::sim_slice("rank 1", "compute", 100, 80);
    obs::sim_slice("rank 0", "compute", 200, 10);
    let trace = obs::trace_data();
    let sim: Vec<_> = trace.events.iter().filter(|e| e.cat == "sim").collect();
    assert_eq!(sim.len(), 3);
    // 1 simulated cycle = 1 µs on the trace timeline.
    assert_eq!(sim[0].ts_us, 100.0);
    assert_eq!(sim[0].dur_us, 50.0);
    // Two distinct tracks → two distinct tids, both named.
    let tids: std::collections::BTreeSet<u64> = sim.iter().map(|e| e.tid).collect();
    assert_eq!(tids.len(), 2);
    let named: std::collections::BTreeSet<&str> = trace
        .thread_names
        .iter()
        .map(|(_, _, n)| n.as_str())
        .collect();
    assert!(named.contains("rank 0") && named.contains("rank 1"));
}

fn snapshot_json_round_trips_through_serde() {
    obs::reset();
    obs::counter_add("test.counter", 7);
    obs::gauge_set("test.gauge", 2.5);
    for v in [1u64, 2, 3, 100, 1000] {
        obs::hist_record("test.hist", v);
    }
    let json = obs::snapshot_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("snapshot is valid JSON");
    assert_eq!(v["counters"]["test.counter"].as_u64(), Some(7));
    assert_eq!(v["gauges"]["test.gauge"].as_f64(), Some(2.5));
    let h = &v["histograms"]["test.hist"];
    assert_eq!(h["count"].as_u64(), Some(5));
    assert_eq!(h["min"].as_u64(), Some(1));
    assert_eq!(h["max"].as_u64(), Some(1000));
    for p in ["p50", "p95", "p99"] {
        assert!(h[p].is_number(), "{p} present and numeric");
    }
}

fn chrome_trace_json_round_trips_through_serde() {
    obs::reset();
    {
        let _s = obs::span("trace me \"quoted\" \\ back\u{1}", "test");
    }
    obs::sim_slice("rank 0", "slice", 5, 9);
    let json = obs::chrome_trace_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("trace is valid JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    // Metadata events name both processes.
    assert!(events.iter().any(|e| {
        e["ph"] == "M" && e["name"] == "process_name" && e["args"]["name"] == "wall-clock"
    }));
    assert!(events.iter().any(|e| {
        e["ph"] == "M" && e["name"] == "process_name" && e["args"]["name"] == "simulated-cycles"
    }));
    // The escaped span name survives the round trip verbatim.
    assert!(events
        .iter()
        .any(|e| { e["ph"] == "X" && e["name"] == "trace me \"quoted\" \\ back\u{1}" }));
    // Every X event carries the required complete-event fields.
    for e in events.iter().filter(|e| e["ph"] == "X") {
        for field in ["pid", "tid", "ts", "dur"] {
            assert!(e[field].is_number(), "X event missing {field}: {e:?}");
        }
        assert!(e["name"].is_string() && e["cat"].is_string());
    }
}

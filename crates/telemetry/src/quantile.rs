//! Quantile extraction over log₂-bucketed latency histograms.
//!
//! This module is compiled unconditionally — unlike the registry-backed
//! [`crate::Histogram`], which the `enabled` feature swaps for a
//! zero-sized no-op — because simulation *results* (e.g. the serving
//! simulator's latency percentiles) must not change when observability
//! is compiled out. [`LatencyHistogram`] is a plain value type with no
//! global state: record samples, merge shards, extract quantiles.
//!
//! # Bucketing and error bound
//!
//! Bucket `0` holds the value `0`; bucket `b ≥ 1` holds the range
//! `[2^(b-1), 2^b − 1]`. A quantile query returns the *upper bound* of
//! the bucket containing the requested rank, clamped to the observed
//! `[min, max]`. For a true quantile value `v ≥ 1` the estimate `e`
//! therefore satisfies
//!
//! ```text
//! v ≤ e ≤ 2·v − 1      (e / v < 2, i.e. < 1 bucket of relative error)
//! ```
//!
//! and is exact for `v ∈ {0, 1}` and whenever the rank lands in the
//! bucket holding the observed maximum or minimum. The estimate is
//! conservative (never under-reports a latency), which is the right
//! bias for tail-latency SLO reporting.

/// Number of log₂ buckets covering the full `u64` domain.
pub(crate) const BUCKETS: usize = 65;

/// Index of the bucket holding `v`.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Largest value the bucket at `index` can hold.
#[inline]
pub(crate) fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Upper-bound quantile estimate over raw bucket counts.
///
/// `q` is a rank fraction in `[0, 1]`; the rank is
/// `ceil(q × count)` clamped to `[1, count]`, so `quantile(0)` reports
/// the minimum's bucket and `quantile(1)` the maximum's. The result is
/// clamped to the observed `[min, max]` (see the module docs for the
/// error bound). Returns `0` when `count` is zero.
pub(crate) fn quantile_from_counts(counts: &[u64], count: u64, min: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (q * count as f64).ceil() as u64;
    let rank = rank.clamp(1, count);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper_bound(i).min(max).max(min);
        }
    }
    max
}

/// A plain log₂-bucketed histogram of `u64` latency samples with
/// p50/p99/p999 extraction.
///
/// Always a real data structure, independent of the `enabled` feature
/// (see the module docs); use the registry-backed [`crate::Histogram`]
/// via [`crate::hist_record`] for observability-only metrics instead.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample (`0` when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the quantile at rank fraction
    /// `q ∈ [0, 1]`; see the module docs for the ≤ 2× error bound.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_counts(
            &self.counts,
            self.count,
            if self.count == 0 { 0 } else { self.min },
            self.max,
            q,
        )
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    /// Closed-form check on uniform data 1..=1000: ranks, buckets, and
    /// clamps all computed by hand.
    #[test]
    fn closed_form_uniform() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // p50: rank 500 → value 500 → bucket 9 (256..=511) → 511.
        assert_eq!(h.p50(), 511);
        // True p50 is 500; 511/500 < 2 — inside the documented bound.
        assert!(h.p50() >= 500 && h.p50() < 1000);
        // p99: rank 990 → bucket 10 (512..=1023), clamped to max 1000.
        assert_eq!(h.p99(), 1000);
        // p999: rank 1000 → the maximum itself.
        assert_eq!(h.p999(), 1000);
        // q=0 reports the minimum's bucket (bucket 1 upper bound = 1).
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
    }

    /// The p999 rank must isolate a 1-in-1000 outlier exactly.
    #[test]
    fn closed_form_tail_outlier() {
        let mut h = LatencyHistogram::new();
        for _ in 0..999 {
            h.record(10);
        }
        h.record(100_000);
        // p99: rank ceil(0.99 × 1000) = 990 → bucket of 10 → upper 15,
        // clamped to min 10 ≤ 15 ≤ max: stays 15.
        assert_eq!(h.p99(), 15);
        // p999: rank 999 → still the 10s bucket.
        assert_eq!(h.quantile(0.999), 15);
        // But with one more sample the outlier is rank 1000 of 1000:
        assert_eq!(h.quantile(1.0), 100_000);
    }

    /// Exact values at {0, 1} and single-sample histograms.
    #[test]
    fn closed_form_exact_small_values() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        let mut h = LatencyHistogram::new();
        h.record(7);
        // Single sample: every quantile is clamped to min == max == 7.
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 7);
        }
    }

    /// The documented bound e/v < 2 holds across magnitudes.
    #[test]
    fn error_bound_holds() {
        for true_v in [1u64, 3, 7, 100, 1023, 1024, 1_000_000, 1 << 40] {
            let mut h = LatencyHistogram::new();
            // Surround with mass so no min/max clamp hides the bucket
            // estimate: half the samples below, half above.
            for _ in 0..500 {
                h.record(true_v / 2);
            }
            for _ in 0..500 {
                h.record(true_v.saturating_mul(4));
            }
            for _ in 0..1000 {
                h.record(true_v);
            }
            let e = h.p50();
            assert!(e >= true_v, "p50 {e} under-reports {true_v}");
            assert!(
                (e as f64) < 2.0 * true_v as f64,
                "p50 {e} breaks the 2x bound for {true_v}"
            );
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let (mut a, mut b, mut c) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for v in 0..200u64 {
            a.record(v * 3);
            c.record(v * 3);
        }
        for v in 0..77u64 {
            b.record(v * 11 + 5);
            c.record(v * 11 + 5);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum(), c.sum());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), c.quantile(q));
        }
    }

    #[test]
    fn empty_is_sane() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }
}

//! Unified observability for the MetaNMP simulation stack.
//!
//! Three primitives, one process-global registry:
//!
//! * **Metrics** — monotonic counters ([`counter_add`]), last-write
//!   gauges ([`gauge_set`]), and log₂-bucketed histograms with
//!   p50/p95/p99 estimation ([`hist_record`], [`hist_merge`],
//!   [`Histogram`]).
//! * **Spans** — RAII wall-clock timers ([`span`]) that aggregate into
//!   per-phase totals and emit Chrome trace events; plus explicit
//!   simulated-time slices ([`sim_slice`]) for cycle-domain activity
//!   tracks (e.g. per-rank NMP compute windows).
//! * **Exporters** — a JSON metrics snapshot ([`snapshot_json`]) and a
//!   Chrome trace-event file ([`chrome_trace_json`]) loadable in
//!   Perfetto or `chrome://tracing`.
//! * **Checkpointing** — a lossless metrics image ([`checkpoint_json`])
//!   that a resumed process folds back in with
//!   [`merge_checkpoint_json`], so counters, histograms, and phase
//!   totals survive a kill-and-resume.
//!
//! A fourth piece is feature-independent: [`LatencyHistogram`], a
//! plain log₂-bucketed histogram with p50/p99/p999 quantile extraction
//! (documented ≤ 2× bucket-granularity error bound) for simulation
//! *results* that must not disappear when observability is compiled
//! out — the serving simulator's latency percentiles are built on it.
//!
//! The `enabled` feature (on by default) selects the real backend.
//! With `--no-default-features` every entry point is an empty
//! `#[inline(always)]` function and every type is zero-sized, so
//! instrumented code compiles to nothing — callers never need their
//! own `#[cfg]` guards. Downstream crates re-expose the switch as a
//! `telemetry` feature forwarding to `telemetry/enabled`.

mod export;
mod quantile;
mod snapshot;

#[cfg(feature = "enabled")]
mod hist;
#[cfg(feature = "enabled")]
mod state;

#[cfg(not(feature = "enabled"))]
mod noop;

pub use export::{render_chrome_trace_json, render_snapshot_json};
pub use quantile::LatencyHistogram;
pub use snapshot::{HistogramSummary, PhaseRow, Snapshot, TraceData, TraceEvent};

#[cfg(feature = "enabled")]
pub use hist::Histogram;
#[cfg(feature = "enabled")]
pub use state::{
    checkpoint_json, counter_add, gauge_set, hist_merge, hist_record, merge_checkpoint_json,
    merge_sink, reset, scoped_sink, sim_slice, snapshot, span, trace_data, SinkImage, SpanGuard,
};

#[cfg(not(feature = "enabled"))]
pub use noop::{
    checkpoint_json, counter_add, gauge_set, hist_merge, hist_record, merge_checkpoint_json,
    merge_sink, reset, scoped_sink, sim_slice, snapshot, span, trace_data, Histogram, SinkImage,
    SpanGuard,
};

/// Whether the real backend is compiled in.
#[inline(always)]
pub fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Renders the current registry contents as a JSON metrics snapshot.
pub fn snapshot_json() -> String {
    render_snapshot_json(&snapshot())
}

/// Renders all recorded span and sim-slice events as a Chrome
/// trace-event JSON file.
pub fn chrome_trace_json() -> String {
    render_chrome_trace_json(&trace_data())
}

/// Renders the registry as a JSON snapshot with every wall-clock
/// quantity stripped (the `phases` section is emptied).
///
/// Counters, gauges, and histograms are all simulated-domain values,
/// so two runs of the same workload — at any `--jobs`/thread count —
/// must produce byte-identical output. This is the artifact the
/// determinism regression checks compare.
pub fn deterministic_snapshot_json() -> String {
    let mut snap = snapshot();
    snap.phases.clear();
    render_snapshot_json(&snap)
}

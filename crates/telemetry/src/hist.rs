//! Log₂-bucketed histograms with percentile estimation.
//!
//! Bucket `0` holds the value `0`; bucket `b ≥ 1` holds the range
//! `[2^(b-1), 2^b - 1]`. 65 buckets cover the full `u64` domain, so
//! recording is a `leading_zeros` plus one array increment — cheap
//! enough for per-burst instrumentation in the DRAM scheduler's hot
//! loop. Percentiles report the *upper bound* of the bucket containing
//! the requested rank (a conservative estimate with ≤ 2× relative
//! error, the standard trade-off for log-bucketed summaries).

pub(crate) use crate::quantile::BUCKETS;
use crate::quantile::{bucket_index, quantile_from_counts};

/// A fixed-size log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records `n` identical samples.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Raw internal fields, for the checkpoint image:
    /// `(counts, count, sum, min, max)`. `min` is the untranslated
    /// sentinel (`u64::MAX` when empty), unlike [`Histogram::min`].
    pub(crate) fn raw_parts(&self) -> (&[u64; BUCKETS], u64, u128, u64, u64) {
        (&self.counts, self.count, self.sum, self.min, self.max)
    }

    /// Rebuilds a histogram from raw fields captured by
    /// [`Histogram::raw_parts`].
    pub(crate) fn from_raw_parts(
        counts: [u64; BUCKETS],
        count: u64,
        sum: u128,
        min: u64,
        max: u64,
    ) -> Self {
        Histogram {
            counts,
            count,
            sum,
            min,
            max,
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample (`0` when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// sample, `p` in `[0, 100]`. Returns `0` when empty.
    ///
    /// The rank is `ceil(p/100 × count)` clamped to `[1, count]`, so
    /// `percentile(0)` is the minimum's bucket and `percentile(100)`
    /// the maximum's.
    pub fn percentile(&self, p: f64) -> u64 {
        quantile_from_counts(
            &self.counts,
            self.count,
            if self.count == 0 { 0 } else { self.min },
            self.max,
            p / 100.0,
        )
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_small_values() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(0);
        }
        h.record(1);
        // Ranks 1..=99 land in bucket 0, rank 100 in bucket 1.
        assert_eq!(h.p50(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.percentile(100.0), 1);
    }

    #[test]
    fn percentiles_on_uniform_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // p50 rank = 500 → value 500 → bucket 9 (256..511), upper 511.
        assert_eq!(h.p50(), 511);
        // p95 rank = 950 → bucket 10 (512..1023), capped at max 1000.
        assert_eq!(h.p95(), 1000);
        assert_eq!(h.p99(), 1000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..100u64 {
            a.record(v * 7);
            c.record(v * 7);
        }
        for v in 0..50u64 {
            b.record(v * 13 + 1);
            c.record(v * 13 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum(), c.sum());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), c.percentile(p));
        }
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(42, 10);
        for _ in 0..10 {
            b.record(42);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.p50(), b.p50());
    }
}

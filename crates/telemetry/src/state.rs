//! The enabled backend: a process-global registry behind one mutex.
//!
//! Hot paths in the simulator (the DRAM scheduler in particular)
//! should batch locally and flush deltas here at coarse intervals —
//! see `dramsim::system` — so a single `Mutex` is plenty: the lock is
//! taken a few times per simulation phase, not per memory burst.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::hist::{Histogram, BUCKETS};
use crate::snapshot::{HistogramSummary, PhaseRow, Snapshot, TraceData, TraceEvent};

/// Trace process id for wall-clock spans.
pub const PID_WALL: u32 = 0;
/// Trace process id for simulated-time (cycle-domain) tracks.
pub const PID_SIM: u32 = 1;

/// Keep at most this many trace events; beyond it, new events are
/// dropped and `telemetry.trace.dropped_events` counts them. Bounds
/// memory for long runs without affecting metrics.
const MAX_TRACE_EVENTS: usize = 200_000;

#[derive(Default)]
struct State {
    epoch: Option<Instant>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    /// name → (calls, total wall-clock ms); survives trace-event caps.
    phase_totals: BTreeMap<String, (u64, f64)>,
    events: Vec<TraceEvent>,
    /// sim-time track name → tid under [`PID_SIM`].
    sim_tracks: BTreeMap<String, u64>,
    dropped_events: u64,
    next_tid: u64,
}

static STATE: Mutex<Option<State>> = Mutex::new(None);

thread_local! {
    /// Stack of scoped sinks installed on this thread. When non-empty,
    /// every telemetry write lands in the innermost sink instead of the
    /// process-global registry; see [`scoped_sink`].
    static SINK: RefCell<Vec<State>> = const { RefCell::new(Vec::new()) };
}

fn with_global_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let state = guard.get_or_insert_with(State::default);
    if state.epoch.is_none() {
        state.epoch = Some(Instant::now());
    }
    f(state)
}

fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
    SINK.with(|stack| {
        let mut stack = stack.borrow_mut();
        match stack.last_mut() {
            Some(local) => f(local),
            None => {
                drop(stack);
                with_global_state(f)
            }
        }
    })
}

thread_local! {
    // Thread ids are always allocated from the global registry so that
    // trace tids stay coherent even when a thread's first telemetry
    // call happens inside a scoped sink.
    static THREAD_TID: u64 = with_global_state(|s| {
        s.next_tid += 1;
        s.next_tid
    });
}

fn thread_tid() -> u64 {
    THREAD_TID.with(|t| *t)
}

/// Adds `delta` to the monotonic counter `name`.
pub fn counter_add(name: &str, delta: u64) {
    if delta == 0 {
        return;
    }
    with_state(|s| {
        *s.counters.entry(name.to_string()).or_insert(0) += delta;
    });
}

/// Sets the gauge `name` to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    with_state(|s| {
        s.gauges.insert(name.to_string(), value);
    });
}

/// Records one sample into the histogram `name`.
pub fn hist_record(name: &str, value: u64) {
    with_state(|s| {
        s.hists.entry(name.to_string()).or_default().record(value);
    });
}

/// Folds a locally accumulated histogram into the registry's `name`.
///
/// This is the batched counterpart of [`hist_record`]: hot loops record
/// into a stack-local [`Histogram`] and merge once per flush interval.
pub fn hist_merge(name: &str, h: &Histogram) {
    if h.count() == 0 {
        return;
    }
    with_state(|s| {
        s.hists.entry(name.to_string()).or_default().merge(h);
    });
}

/// An RAII wall-clock timer; records a span event when dropped.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct SpanGuard {
    name: String,
    cat: &'static str,
    start: Instant,
}

/// Opens a wall-clock span. The span closes (and is recorded) when the
/// returned guard drops, so nesting follows lexical scope.
pub fn span(name: impl Into<String>, cat: &'static str) -> SpanGuard {
    // Touch the state so the epoch predates the span's start.
    with_state(|_| {});
    SpanGuard {
        name: name.into(),
        cat,
        start: Instant::now(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = Instant::now();
        let dur_us = end.duration_since(self.start).as_secs_f64() * 1e6;
        let tid = thread_tid();
        let name = std::mem::take(&mut self.name);
        let cat = self.cat;
        let start = self.start;
        with_state(|s| {
            let epoch = s.epoch.expect("epoch set on first access");
            let ts_us = start
                .checked_duration_since(epoch)
                .map_or(0.0, |d| d.as_secs_f64() * 1e6);
            let entry = s.phase_totals.entry(name.clone()).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += dur_us / 1e3;
            if s.events.len() < MAX_TRACE_EVENTS {
                s.events.push(TraceEvent {
                    pid: PID_WALL,
                    tid,
                    name,
                    cat: cat.to_string(),
                    ts_us,
                    dur_us,
                });
            } else {
                s.dropped_events += 1;
            }
        });
    }
}

/// Records one simulated-time slice on the named track (cycle domain,
/// rendered as 1 cycle = 1 µs under the "simulated" trace process).
pub fn sim_slice(track: &str, name: impl Into<String>, start_cycle: u64, dur_cycles: u64) {
    with_state(|s| {
        if s.events.len() >= MAX_TRACE_EVENTS {
            s.dropped_events += 1;
            return;
        }
        let tid = match s.sim_tracks.get(track) {
            Some(&tid) => tid,
            None => {
                let tid = s.sim_tracks.len() as u64 + 1;
                s.sim_tracks.insert(track.to_string(), tid);
                tid
            }
        };
        s.events.push(TraceEvent {
            pid: PID_SIM,
            tid,
            name: name.into(),
            cat: "sim".to_string(),
            ts_us: start_cycle as f64,
            dur_us: dur_cycles as f64,
        });
    });
}

/// Copies every metric out of the registry.
pub fn snapshot() -> Snapshot {
    with_state(|s| {
        let mut counters: Vec<(String, u64)> =
            s.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
        if s.dropped_events > 0 {
            counters.push((
                "telemetry.trace.dropped_events".to_string(),
                s.dropped_events,
            ));
            counters.sort();
        }
        Snapshot {
            counters,
            gauges: s.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: s
                .hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSummary {
                            count: h.count(),
                            sum: h.sum(),
                            min: h.min(),
                            max: h.max(),
                            mean: h.mean(),
                            p50: h.p50(),
                            p95: h.p95(),
                            p99: h.p99(),
                        },
                    )
                })
                .collect(),
            phases: s
                .phase_totals
                .iter()
                .map(|(name, &(calls, total_ms))| PhaseRow {
                    name: name.clone(),
                    calls,
                    total_ms,
                })
                .collect(),
        }
    })
}

/// Copies every recorded trace event plus track names.
pub fn trace_data() -> TraceData {
    with_state(|s| {
        let mut thread_names: Vec<(u32, u64, String)> = s
            .sim_tracks
            .iter()
            .map(|(name, &tid)| (PID_SIM, tid, name.clone()))
            .collect();
        thread_names.sort_by_key(|&(pid, tid, _)| (pid, tid));
        TraceData {
            events: s.events.clone(),
            thread_names,
        }
    })
}

/// Raw image of one histogram inside a checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HistImage {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// The metrics half of the registry, as persisted by
/// [`checkpoint_json`]. Trace events and sim tracks are wall-clock
/// diagnostics of one process and are deliberately not carried across
/// a resume.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct RegistryImage {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, HistImage>,
    phases: BTreeMap<String, (u64, f64)>,
}

/// Serializes the registry's metrics — counters, gauges, histograms
/// (full bucket arrays, not summaries), and per-phase totals — as a
/// JSON checkpoint image for [`merge_checkpoint_json`].
pub fn checkpoint_json() -> String {
    let image = with_state(|s| RegistryImage {
        counters: s.counters.clone(),
        gauges: s.gauges.clone(),
        hists: s
            .hists
            .iter()
            .map(|(k, h)| {
                let (counts, count, sum, min, max) = h.raw_parts();
                (
                    k.clone(),
                    HistImage {
                        counts: counts.to_vec(),
                        count,
                        sum,
                        min,
                        max,
                    },
                )
            })
            .collect(),
        phases: s.phase_totals.clone(),
    });
    serde_json::to_string(&image).unwrap_or_else(|e| {
        // The image is built from plain maps of plain values; encoding
        // cannot fail, but telemetry must never take a process down.
        debug_assert!(false, "checkpoint image encoding failed: {e:?}");
        "{}".to_string()
    })
}

/// Folds a [`checkpoint_json`] image into the registry: counters and
/// phase totals add, histograms merge bucket-wise, and gauges from the
/// image fill in only where the live registry has no value (last write
/// wins, and the live process is later than the checkpoint).
///
/// # Errors
///
/// Returns a description of the problem when `json` is not a valid
/// image; the registry is left untouched in that case.
pub fn merge_checkpoint_json(json: &str) -> Result<(), String> {
    let image: RegistryImage =
        serde_json::from_str(json).map_err(|e| format!("malformed telemetry checkpoint: {e:?}"))?;
    let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
    for (name, h) in image.hists {
        let counts: [u64; BUCKETS] = h
            .counts
            .try_into()
            .map_err(|v: Vec<u64>| format!("histogram {name:?} has {} buckets", v.len()))?;
        hists.insert(
            name,
            Histogram::from_raw_parts(counts, h.count, h.sum, h.min, h.max),
        );
    }
    with_state(|s| {
        for (name, v) in image.counters {
            *s.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in image.gauges {
            s.gauges.entry(name).or_insert(v);
        }
        for (name, h) in hists {
            s.hists.entry(name).or_default().merge(&h);
        }
        for (name, (calls, ms)) in image.phases {
            let entry = s.phase_totals.entry(name).or_insert((0, 0.0));
            entry.0 += calls;
            entry.1 += ms;
        }
    });
    Ok(())
}

/// Everything a scoped sink captured, ready to be folded into the
/// registry (or an enclosing sink) with [`merge_sink`].
///
/// The image is `Send`, so worker threads can hand their telemetry to
/// the thread that owns the canonical merge order.
#[derive(Default)]
pub struct SinkImage {
    inner: Option<Box<State>>,
}

impl std::fmt::Debug for SinkImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkImage")
            .field("captured", &self.inner.is_some())
            .finish()
    }
}

/// Pops the sink on drop so a panic inside the captured closure cannot
/// leave a stale sink redirecting the thread's telemetry forever.
struct SinkGuard;

impl Drop for SinkGuard {
    fn drop(&mut self) {
        SINK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Runs `f` with every telemetry write on *this thread* captured into a
/// private sink instead of the process-global registry, and returns the
/// captured image alongside `f`'s result.
///
/// This is the building block for deterministic parallelism: each
/// worker captures into its own sink, and the coordinating thread folds
/// the images back with [`merge_sink`] in a canonical order, making the
/// registry contents independent of thread scheduling. Sinks nest
/// (innermost wins) and are per-thread; spawned threads are *not*
/// redirected — capture on the thread that does the work.
pub fn scoped_sink<R>(f: impl FnOnce() -> R) -> (R, SinkImage) {
    let epoch = with_global_state(|s| s.epoch.expect("epoch set on first access"));
    SINK.with(|stack| {
        stack.borrow_mut().push(State {
            // Share the global epoch so captured wall-clock events merge
            // onto the same timeline without timestamp rebasing.
            epoch: Some(epoch),
            ..State::default()
        });
    });
    let guard = SinkGuard;
    let result = f();
    std::mem::forget(guard);
    let state = SINK.with(|stack| stack.borrow_mut().pop());
    let state = state.expect("scoped_sink pushed a sink above");
    (
        result,
        SinkImage {
            inner: Some(Box::new(state)),
        },
    )
}

/// Folds a captured [`SinkImage`] into the current telemetry
/// destination (the global registry, or the enclosing sink when called
/// inside [`scoped_sink`]).
///
/// Counters, phase totals, and dropped-event tallies add; histograms
/// merge bucket-wise; **gauges overwrite** (the merge order defines
/// "last write", mirroring what a serial run would have produced);
/// trace events append with simulated-time tracks re-keyed by name.
pub fn merge_sink(image: SinkImage) {
    let Some(src) = image.inner else { return };
    let src = *src;
    with_state(|dst| {
        for (name, v) in src.counters {
            *dst.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in src.gauges {
            dst.gauges.insert(name, v);
        }
        for (name, h) in src.hists {
            dst.hists.entry(name).or_default().merge(&h);
        }
        for (name, (calls, ms)) in src.phase_totals {
            let entry = dst.phase_totals.entry(name).or_insert((0, 0.0));
            entry.0 += calls;
            entry.1 += ms;
        }
        let mut tid_map: BTreeMap<u64, u64> = BTreeMap::new();
        for (name, src_tid) in src.sim_tracks {
            let dst_tid = match dst.sim_tracks.get(&name) {
                Some(&tid) => tid,
                None => {
                    let tid = dst.sim_tracks.len() as u64 + 1;
                    dst.sim_tracks.insert(name, tid);
                    tid
                }
            };
            tid_map.insert(src_tid, dst_tid);
        }
        for mut e in src.events {
            if dst.events.len() >= MAX_TRACE_EVENTS {
                dst.dropped_events += 1;
                continue;
            }
            if e.pid == PID_SIM {
                if let Some(&tid) = tid_map.get(&e.tid) {
                    e.tid = tid;
                }
            }
            dst.events.push(e);
        }
        dst.dropped_events += src.dropped_events;
    });
}

/// Clears all metrics, spans, and the wall-clock epoch.
///
/// Only the process-global registry is cleared; sinks installed by
/// [`scoped_sink`] on other threads are unaffected.
pub fn reset() {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    // Preserve the tid counter: live threads keep their cached tids.
    let next_tid = guard.as_ref().map_or(0, |s| s.next_tid);
    *guard = Some(State {
        next_tid,
        ..State::default()
    });
}

//! The disabled backend: every entry point is an empty inline function
//! and every type is zero-sized, so a `--no-default-features` build
//! carries no telemetry cost at all.

use crate::snapshot::{Snapshot, TraceData};

/// Zero-sized stand-in for the log-bucketed histogram.
#[derive(Debug, Clone, Copy, Default)]
pub struct Histogram;

impl Histogram {
    /// An empty histogram.
    #[inline(always)]
    pub fn new() -> Self {
        Histogram
    }

    /// No-op.
    #[inline(always)]
    pub fn record(&mut self, _v: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn record_n(&mut self, _v: u64, _n: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn merge(&mut self, _other: &Histogram) {}

    /// Always `0`.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always `0`.
    #[inline(always)]
    pub fn sum(&self) -> u128 {
        0
    }

    /// Always `0`.
    #[inline(always)]
    pub fn min(&self) -> u64 {
        0
    }

    /// Always `0`.
    #[inline(always)]
    pub fn max(&self) -> u64 {
        0
    }

    /// Always `0.0`.
    #[inline(always)]
    pub fn mean(&self) -> f64 {
        0.0
    }

    /// Always `0`.
    #[inline(always)]
    pub fn percentile(&self, _p: f64) -> u64 {
        0
    }

    /// Always `0`.
    #[inline(always)]
    pub fn p50(&self) -> u64 {
        0
    }

    /// Always `0`.
    #[inline(always)]
    pub fn p95(&self) -> u64 {
        0
    }

    /// Always `0`.
    #[inline(always)]
    pub fn p99(&self) -> u64 {
        0
    }

    /// Always `0`.
    #[inline(always)]
    pub fn p999(&self) -> u64 {
        0
    }
}

/// Zero-sized stand-in for the RAII span timer.
#[derive(Debug)]
pub struct SpanGuard;

// An explicit (empty) Drop keeps callers uniform across backends:
// `drop(guard)` to end a span early is legal in both, and the enabled
// backend's real Drop is mirrored here for lint purposes.
impl Drop for SpanGuard {
    #[inline(always)]
    fn drop(&mut self) {}
}

/// No-op.
#[inline(always)]
pub fn counter_add(_name: &str, _delta: u64) {}

/// No-op.
#[inline(always)]
pub fn gauge_set(_name: &str, _value: f64) {}

/// No-op.
#[inline(always)]
pub fn hist_record(_name: &str, _value: u64) {}

/// No-op.
#[inline(always)]
pub fn hist_merge(_name: &str, _h: &Histogram) {}

/// Returns a zero-sized guard; nothing is timed or recorded.
#[inline(always)]
pub fn span(_name: impl Into<String>, _cat: &'static str) -> SpanGuard {
    SpanGuard
}

/// No-op.
#[inline(always)]
pub fn sim_slice(_track: &str, _name: impl Into<String>, _start_cycle: u64, _dur_cycles: u64) {}

/// Always the empty snapshot.
#[inline(always)]
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// Always empty trace data.
#[inline(always)]
pub fn trace_data() -> TraceData {
    TraceData::default()
}

/// Always the empty image (`"{}"`), which merges as a no-op.
#[inline(always)]
pub fn checkpoint_json() -> String {
    "{}".to_string()
}

/// No-op; any image is accepted.
#[inline(always)]
pub fn merge_checkpoint_json(_json: &str) -> Result<(), String> {
    Ok(())
}

/// No-op.
#[inline(always)]
pub fn reset() {}

/// Zero-sized stand-in for a captured sink image.
#[derive(Debug, Default)]
pub struct SinkImage;

/// Runs `f`; nothing is captured.
#[inline(always)]
pub fn scoped_sink<R>(f: impl FnOnce() -> R) -> (R, SinkImage) {
    (f(), SinkImage)
}

/// No-op.
#[inline(always)]
pub fn merge_sink(_image: SinkImage) {}

//! JSON renderers for snapshots and Chrome trace files.
//!
//! Hand-rolled writers keep the telemetry crate dependency-free; both
//! outputs are plain JSON that `serde_json` (and Perfetto / Chrome's
//! `about:tracing`) parse back losslessly.

use std::fmt::Write as _;

use crate::snapshot::{Snapshot, TraceData};

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{v}");
    // Keep re-parsed values floating-point: "5" → "5.0".
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Renders a [`Snapshot`] as a pretty-printed JSON object with
/// `counters`, `gauges`, `histograms`, and `phases` sections.
pub fn render_snapshot_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"counters\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        push_json_str(&mut out, name);
        let _ = write!(out, ": {v}");
    }
    if !snap.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"gauges\": {");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        push_json_str(&mut out, name);
        out.push_str(": ");
        push_f64(&mut out, *v);
    }
    if !snap.gauges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        push_json_str(&mut out, name);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": ",
            h.count, h.sum, h.min, h.max
        );
        push_f64(&mut out, h.mean);
        let _ = write!(
            out,
            ", \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            h.p50, h.p95, h.p99
        );
    }
    if !snap.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"phases\": [");
    for (i, p) in snap.phases.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"name\": ");
        push_json_str(&mut out, &p.name);
        let _ = write!(out, ", \"calls\": {}, \"total_ms\": ", p.calls);
        push_f64(&mut out, p.total_ms);
        out.push('}');
    }
    if !snap.phases.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders trace data in the Chrome trace-event JSON format (an object
/// with a `traceEvents` array), loadable in Perfetto and
/// `chrome://tracing`. Wall-clock spans live under pid 0; simulated
/// cycle-domain tracks under pid 1 with 1 cycle rendered as 1 µs.
pub fn render_chrome_trace_json(trace: &TraceData) -> String {
    let mut out = String::with_capacity(4096 + trace.events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let emit_sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push_str(",\n");
        }
    };
    for &(pid, name) in &[(0u32, "wall-clock"), (1u32, "simulated-cycles")] {
        emit_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":"
        );
        push_json_str(&mut out, name);
        out.push_str("}}");
    }
    for (pid, tid, name) in &trace.thread_names {
        emit_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":"
        );
        push_json_str(&mut out, name);
        out.push_str("}}");
    }
    for e in &trace.events {
        emit_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"name\":",
            e.pid, e.tid
        );
        push_json_str(&mut out, &e.name);
        out.push_str(",\"cat\":");
        push_json_str(&mut out, &e.cat);
        out.push_str(",\"ts\":");
        push_f64(&mut out, e.ts_us);
        out.push_str(",\"dur\":");
        push_f64(&mut out, e.dur_us);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

//! Plain-data snapshot types shared by the enabled and no-op backends.

/// Summary statistics of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u128,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median estimate (log-bucket upper bound).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// Aggregated wall-clock timing of all spans sharing a name.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Span name.
    pub name: String,
    /// Times a span with this name completed.
    pub calls: u64,
    /// Total wall-clock milliseconds across those spans.
    pub total_ms: f64,
}

/// A point-in-time copy of every metric in the registry.
///
/// All collections are sorted by name, so rendering is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Per-phase (span-name) wall-clock totals.
    pub phases: Vec<PhaseRow>,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// One Chrome trace-event (`ph: "X"` complete event).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Trace process id: `0` = wall clock, `1` = simulated time.
    pub pid: u32,
    /// Trace thread id within the process.
    pub tid: u64,
    /// Event name.
    pub name: String,
    /// Event category.
    pub cat: String,
    /// Start timestamp in microseconds (simulated events use
    /// 1 cycle = 1 µs).
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

/// Everything the Chrome-trace exporter needs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// Complete events, in recording order.
    pub events: Vec<TraceEvent>,
    /// Human-readable names for `(pid, tid)` tracks.
    pub thread_names: Vec<(u32, u64, String)>,
}

//! Per-type vertex feature stores and feature projection.
//!
//! Heterogeneous graphs carry *distinct feature dimensions* per vertex
//! type (§2.1). Feature projection maps them all into one hidden space
//! with a per-type weight matrix; the paper runs this compute-bound
//! phase on the host CPU while everything downstream is offloaded.

use std::collections::BTreeMap;

use hetgraph::{GraphError, HeteroGraph, VertexTypeId};
use serde::{Deserialize, Serialize};

use crate::error::HgnnError;
use crate::profile::OpCounters;
use crate::tensor::kernels::{self, TileGeometry};
use crate::tensor::Matrix;

/// Raw (pre-projection) features for every vertex type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureStore {
    per_type: BTreeMap<VertexTypeId, Matrix>,
}

impl FeatureStore {
    /// Generates seeded random features matching the graph's schema
    /// (one row per vertex, columns per the type's declared
    /// `feature_dim`).
    pub fn random(graph: &HeteroGraph, seed: u64) -> Self {
        let mut per_type = BTreeMap::new();
        for (ty, decl) in graph.schema().vertex_types() {
            let rows = graph.vertex_count(ty).expect("schema types exist in graph") as usize;
            per_type.insert(
                ty,
                Matrix::random(rows, decl.feature_dim, seed ^ (ty.index() as u64) << 32),
            );
        }
        FeatureStore { per_type }
    }

    /// Builds a feature store from explicit per-type matrices,
    /// validating them against the graph's schema.
    ///
    /// Use this instead of constructing matrices ad hoc when features
    /// come from an external source: shapes must match the schema's
    /// vertex counts and feature dimensions, and every value must be
    /// finite — a NaN or infinity here would silently poison every
    /// downstream aggregation.
    ///
    /// # Errors
    ///
    /// Returns [`HgnnError::MissingFeatures`] if a vertex type has no
    /// matrix, [`HgnnError::DimensionMismatch`] on a shape mismatch,
    /// or [`GraphError::NonFiniteFeature`] (wrapped in
    /// [`HgnnError::Graph`]) naming the first NaN/infinite value.
    pub fn from_matrices(
        graph: &HeteroGraph,
        per_type: BTreeMap<VertexTypeId, Matrix>,
    ) -> Result<Self, HgnnError> {
        for (ty, decl) in graph.schema().vertex_types() {
            let m = per_type.get(&ty).ok_or(HgnnError::MissingFeatures(ty))?;
            let rows = graph.vertex_count(ty)? as usize;
            if m.rows() != rows {
                return Err(HgnnError::DimensionMismatch {
                    expected: rows,
                    actual: m.rows(),
                });
            }
            if m.cols() != decl.feature_dim {
                return Err(HgnnError::DimensionMismatch {
                    expected: decl.feature_dim,
                    actual: m.cols(),
                });
            }
            for row in 0..m.rows() {
                if let Some(col) = m.row(row).iter().position(|v| !v.is_finite()) {
                    return Err(GraphError::NonFiniteFeature { ty, row, col }.into());
                }
            }
        }
        Ok(FeatureStore { per_type })
    }

    /// The feature matrix of one type.
    ///
    /// # Errors
    ///
    /// Returns [`HgnnError::MissingFeatures`] for types without
    /// features.
    pub fn features(&self, ty: VertexTypeId) -> Result<&Matrix, HgnnError> {
        self.per_type.get(&ty).ok_or(HgnnError::MissingFeatures(ty))
    }

    /// Total bytes of raw feature storage.
    pub fn byte_size(&self) -> usize {
        self.per_type.values().map(Matrix::byte_size).sum()
    }
}

/// Per-type projection weights into a common hidden dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    hidden_dim: usize,
    weights: BTreeMap<VertexTypeId, Matrix>,
}

impl Projection {
    /// Creates seeded random projection weights (`feature_dim ×
    /// hidden_dim` per type).
    pub fn random(graph: &HeteroGraph, hidden_dim: usize, seed: u64) -> Self {
        let mut weights = BTreeMap::new();
        for (ty, decl) in graph.schema().vertex_types() {
            weights.insert(
                ty,
                Matrix::random(
                    decl.feature_dim,
                    hidden_dim,
                    seed ^ 0xABCD ^ (ty.index() as u64),
                ),
            );
        }
        Projection {
            hidden_dim,
            weights,
        }
    }

    /// The common hidden dimension all types project into.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Projects every vertex of every type, returning the hidden
    /// feature store and accumulating op counters.
    ///
    /// Cost model: `2 × raw_dim × hidden_dim` flops per vertex; reads
    /// the raw row and the weight matrix (weights counted once per
    /// type), writes the hidden row.
    ///
    /// # Errors
    ///
    /// Returns [`HgnnError::MissingFeatures`] if `features` lacks a
    /// type, or [`HgnnError::DimensionMismatch`] if a feature matrix
    /// disagrees with its weight matrix.
    pub fn project(
        &self,
        graph: &HeteroGraph,
        features: &FeatureStore,
        counters: &mut OpCounters,
    ) -> Result<HiddenFeatures, HgnnError> {
        self.project_with_tiles(graph, features, counters, TileGeometry::default())
    }

    /// [`Projection::project`] with an explicit cache-blocking
    /// geometry, normally derived from the rank-AU feature-cache size
    /// (`nmp::config::NmpConfig::feature_cache_tiles`).
    ///
    /// The blocked batch kernel is bit-identical to row-at-a-time
    /// projection for every geometry, and the op counters are derived
    /// from shapes alone, so results and counts never depend on the
    /// tiling.
    ///
    /// # Errors
    ///
    /// Same contract as [`Projection::project`].
    pub fn project_with_tiles(
        &self,
        graph: &HeteroGraph,
        features: &FeatureStore,
        counters: &mut OpCounters,
        tiles: TileGeometry,
    ) -> Result<HiddenFeatures, HgnnError> {
        let mut per_type = BTreeMap::new();
        for (ty, _) in graph.schema().vertex_types() {
            let raw = features.features(ty)?;
            let w = self
                .weights
                .get(&ty)
                .ok_or(HgnnError::MissingFeatures(ty))?;
            if raw.cols() != w.rows() {
                return Err(HgnnError::DimensionMismatch {
                    expected: w.rows(),
                    actual: raw.cols(),
                });
            }
            let mut hidden = Matrix::zeros(raw.rows(), self.hidden_dim);
            kernels::project_batch(
                raw.as_slice(),
                raw.rows(),
                raw.cols(),
                w.as_slice(),
                self.hidden_dim,
                hidden.as_mut_slice(),
                tiles,
            );
            counters.flops += 2 * (raw.rows() * raw.cols() * self.hidden_dim) as u128;
            counters.bytes_read += (raw.byte_size() + w.byte_size()) as u128;
            counters.bytes_written += hidden.byte_size() as u128;
            per_type.insert(ty, hidden);
        }
        Ok(HiddenFeatures {
            hidden_dim: self.hidden_dim,
            per_type,
        })
    }
}

/// Projected (hidden-space) features for every vertex type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HiddenFeatures {
    hidden_dim: usize,
    per_type: BTreeMap<VertexTypeId, Matrix>,
}

impl HiddenFeatures {
    /// The hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// The hidden feature row of one vertex.
    ///
    /// # Panics
    ///
    /// Panics if the vertex id is out of range for its type's matrix.
    pub fn vector(&self, ty: VertexTypeId, id: u32) -> &[f32] {
        self.per_type
            .get(&ty)
            .expect("hidden features cover all types")
            .row(id as usize)
    }

    /// The full hidden matrix of one type.
    ///
    /// # Errors
    ///
    /// Returns [`HgnnError::MissingFeatures`] for unknown types.
    pub fn matrix(&self, ty: VertexTypeId) -> Result<&Matrix, HgnnError> {
        self.per_type.get(&ty).ok_or(HgnnError::MissingFeatures(ty))
    }

    /// Total bytes of hidden feature storage.
    pub fn byte_size(&self) -> usize {
        self.per_type.values().map(Matrix::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph::datasets::{generate, DatasetId, GeneratorConfig};

    fn small_graph() -> HeteroGraph {
        generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.02)).graph
    }

    #[test]
    fn feature_store_shapes_match_schema() {
        let g = small_graph();
        let fs = FeatureStore::random(&g, 1);
        for (ty, decl) in g.schema().vertex_types() {
            let m = fs.features(ty).unwrap();
            assert_eq!(m.rows() as u32, g.vertex_count(ty).unwrap());
            assert_eq!(m.cols(), decl.feature_dim);
        }
    }

    #[test]
    fn projection_produces_hidden_dim() {
        let g = small_graph();
        let fs = FeatureStore::random(&g, 1);
        let proj = Projection::random(&g, 16, 2);
        let mut c = OpCounters::default();
        let hidden = proj.project(&g, &fs, &mut c).unwrap();
        assert_eq!(hidden.hidden_dim(), 16);
        for (ty, _) in g.schema().vertex_types() {
            assert_eq!(hidden.matrix(ty).unwrap().cols(), 16);
        }
        assert!(c.flops > 0);
        assert!(c.bytes_read > 0);
        assert!(c.bytes_written > 0);
    }

    #[test]
    fn projection_flop_count_is_exact() {
        let g = small_graph();
        let fs = FeatureStore::random(&g, 1);
        let proj = Projection::random(&g, 8, 2);
        let mut c = OpCounters::default();
        proj.project(&g, &fs, &mut c).unwrap();
        let expected: u128 = g
            .schema()
            .vertex_types()
            .map(|(ty, decl)| {
                2 * g.vertex_count(ty).unwrap() as u128 * decl.feature_dim as u128 * 8
            })
            .sum();
        assert_eq!(c.flops, expected);
    }

    #[test]
    fn projection_is_deterministic() {
        let g = small_graph();
        let fs = FeatureStore::random(&g, 1);
        let proj = Projection::random(&g, 8, 2);
        let mut c1 = OpCounters::default();
        let mut c2 = OpCounters::default();
        let h1 = proj.project(&g, &fs, &mut c1).unwrap();
        let h2 = proj.project(&g, &fs, &mut c2).unwrap();
        let ty = g.schema().type_by_mnemonic('M').unwrap();
        assert_eq!(
            h1.matrix(ty).unwrap().max_abs_diff(h2.matrix(ty).unwrap()),
            0.0
        );
    }

    fn matrices_of(g: &HeteroGraph, fs: &FeatureStore) -> BTreeMap<VertexTypeId, Matrix> {
        g.schema()
            .vertex_types()
            .map(|(ty, _)| (ty, fs.features(ty).unwrap().clone()))
            .collect()
    }

    #[test]
    fn from_matrices_accepts_valid_features() {
        let g = small_graph();
        let fs = FeatureStore::random(&g, 1);
        let checked = FeatureStore::from_matrices(&g, matrices_of(&g, &fs)).unwrap();
        assert_eq!(checked, fs);
    }

    #[test]
    fn from_matrices_rejects_non_finite_values() {
        let g = small_graph();
        let fs = FeatureStore::random(&g, 1);
        for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut per_type = matrices_of(&g, &fs);
            let (&ty, m) = per_type.iter_mut().next().unwrap();
            m.row_mut(0)[1] = poison;
            let err = FeatureStore::from_matrices(&g, per_type).unwrap_err();
            match err {
                HgnnError::Graph(hetgraph::GraphError::NonFiniteFeature { ty: t, row, col }) => {
                    assert_eq!((t, row, col), (ty, 0, 1));
                }
                other => panic!("expected NonFiniteFeature, got {other}"),
            }
        }
    }

    #[test]
    fn from_matrices_rejects_missing_and_misshapen_types() {
        let g = small_graph();
        let fs = FeatureStore::random(&g, 1);

        let mut per_type = matrices_of(&g, &fs);
        let (&first, _) = per_type.iter().next().unwrap();
        per_type.remove(&first);
        assert!(matches!(
            FeatureStore::from_matrices(&g, per_type).unwrap_err(),
            HgnnError::MissingFeatures(_)
        ));

        let mut per_type = matrices_of(&g, &fs);
        let m = per_type.values_mut().next().unwrap();
        *m = Matrix::zeros(m.rows() + 1, m.cols());
        assert!(matches!(
            FeatureStore::from_matrices(&g, per_type).unwrap_err(),
            HgnnError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn vector_accessor_matches_matrix_row() {
        let g = small_graph();
        let fs = FeatureStore::random(&g, 1);
        let proj = Projection::random(&g, 8, 2);
        let mut c = OpCounters::default();
        let h = proj.project(&g, &fs, &mut c).unwrap();
        let ty = g.schema().type_by_mnemonic('A').unwrap();
        assert_eq!(h.vector(ty, 0), h.matrix(ty).unwrap().row(0));
    }
}

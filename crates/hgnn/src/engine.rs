//! Execution engines: materialized baseline vs. on-the-fly reuse.
//!
//! Both engines compute the same model (identical embeddings, verified
//! by tests) but differ exactly where the paper says HGNN systems
//! differ:
//!
//! * [`MaterializedEngine`] enumerates and *stores* every metapath
//!   instance up front (the pre-processing phase of Figure 2) and then
//!   aggregates every instance independently, re-reading the features
//!   of shared prefix vertices for every instance — the redundant
//!   computation of Figure 5.
//! * [`OnTheFlyEngine`] generates instances during aggregation with the
//!   cartesian-like product walk and carries a running prefix aggregate
//!   (§3.1–3.2), so each prefix-tree node is aggregated exactly once
//!   and no instance list is ever stored. This is the paper's
//!   "SoftwareOnly" configuration.
//!
//! All flops and bytes are counted per phase into a
//! [`WorkloadProfile`]; the baselines and the NMP model consume these
//! counts.

use std::collections::BTreeMap;

use hetgraph::cartesian::{walk_prefix_tree, WalkEvent};
use hetgraph::instances::{count_instances, count_prefix_nodes, enumerate_instances};
use hetgraph::{HeteroGraph, Metapath, VertexId, VertexTypeId};

use crate::error::HgnnError;
use crate::features::{FeatureStore, HiddenFeatures, Projection};
use crate::model::{ModelConfig, ModelKind};
use crate::profile::{OpCounters, WorkloadProfile};
use crate::tensor::{softmax, vec_add, vec_axpy, vec_dot, vec_scale, Matrix};

/// Final embeddings, one matrix per metapath start type.
#[derive(Debug, Clone, PartialEq)]
pub struct Embeddings {
    per_type: BTreeMap<VertexTypeId, Matrix>,
}

impl Embeddings {
    /// Assembles embeddings from per-type matrices (used by external
    /// executors, e.g. the NMP simulator, whose results are compared
    /// against the engines here).
    pub fn from_per_type(per_type: BTreeMap<VertexTypeId, Matrix>) -> Self {
        Embeddings { per_type }
    }

    /// Types that received embeddings (the metapath start types).
    pub fn types(&self) -> impl Iterator<Item = VertexTypeId> + '_ {
        self.per_type.keys().copied()
    }

    /// The embedding matrix of one type, if that type started any
    /// metapath.
    pub fn matrix(&self, ty: VertexTypeId) -> Option<&Matrix> {
        self.per_type.get(&ty)
    }

    /// Maximum absolute difference against another embedding set.
    ///
    /// # Panics
    ///
    /// Panics if the two sets cover different types or shapes.
    pub fn max_abs_diff(&self, other: &Embeddings) -> f32 {
        assert_eq!(
            self.per_type.len(),
            other.per_type.len(),
            "embedding type sets differ"
        );
        self.per_type
            .iter()
            .map(|(ty, m)| {
                m.max_abs_diff(
                    other
                        .per_type
                        .get(ty)
                        .expect("embedding type sets must match"),
                )
            })
            .fold(0.0, f32::max)
    }
}

/// Result of one inference: embeddings plus the measured workload.
#[derive(Debug, Clone)]
pub struct Inference {
    /// The computed embeddings.
    pub embeddings: Embeddings,
    /// Measured per-phase operation counts.
    pub profile: WorkloadProfile,
    /// Intermediate bytes the engine kept resident for the entire run
    /// (instance lists, per-instance result vectors, tree structures).
    /// This is what MetaNMP eliminates.
    pub resident_intermediate_bytes: u128,
    /// Peak transient working-set bytes (per-start-vertex buffers that
    /// are freed immediately after use).
    pub peak_transient_bytes: u128,
}

/// A strategy for executing an HGNN forward pass.
///
/// Implementations must produce identical embeddings for identical
/// inputs; they may differ arbitrarily in how much work and memory the
/// execution takes, which is what the profile records.
pub trait InferenceEngine {
    /// Short identifier used in reports.
    fn name(&self) -> &'static str;

    /// Runs a full forward pass (projection, structural aggregation
    /// per metapath, semantic aggregation).
    ///
    /// # Errors
    ///
    /// Returns [`HgnnError::NoMetapaths`] when `metapaths` is empty and
    /// propagates graph/feature errors.
    fn run(
        &self,
        graph: &HeteroGraph,
        features: &FeatureStore,
        config: &ModelConfig,
        metapaths: &[Metapath],
    ) -> Result<Inference, HgnnError>;
}

/// The conventional materialize-everything pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaterializedEngine;

/// The paper's on-the-fly, reuse-aware pipeline (SoftwareOnly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnTheFlyEngine;

const F32: u128 = 4;

/// Reusable working buffers for one metapath's aggregation loop,
/// following the `VisitScratch` arena pattern from `nmp::functional`:
/// allocated once per metapath and recycled across start vertices so
/// the hot loop performs no per-vertex heap allocation.
struct WalkScratch {
    /// Running prefix aggregates, one per depth.
    prefix: Vec<Vec<f32>>,
    /// SHGNN child accumulators per depth.
    child_sum: Vec<Vec<f32>>,
    /// SHGNN child counts per depth.
    child_count: Vec<usize>,
    /// Current path vertices per depth.
    current: Vec<u32>,
    /// Instance vectors of the current start vertex (`n × d`).
    inst_vecs: Vec<f32>,
    /// Attention score buffer for [`combine_instances`].
    scores: Vec<f32>,
    /// Structural output row of the current start vertex.
    out: Vec<f32>,
}

impl WalkScratch {
    fn new(hops: usize, d: usize) -> Self {
        WalkScratch {
            prefix: vec![vec![0.0; d]; hops + 1],
            child_sum: vec![vec![0.0; d]; hops + 1],
            child_count: vec![0; hops + 1],
            current: vec![0; hops + 1],
            inst_vecs: Vec::new(),
            scores: Vec::new(),
            out: vec![0.0; d],
        }
    }
}

/// Combines the instance vectors of one start vertex into its
/// structural result (`out`), by mean or by dot-product attention
/// against the start vertex's own hidden vector.
#[allow(clippy::too_many_arguments)]
fn combine_instances(
    start_vec: &[f32],
    inst_vecs: &[f32],
    n: usize,
    d: usize,
    attention: bool,
    out: &mut [f32],
    c: &mut OpCounters,
    scores_buf: &mut Vec<f32>,
) {
    out.fill(0.0);
    if n == 0 {
        return;
    }
    if attention {
        scores_buf.clear();
        let scale = 1.0 / (d as f32).sqrt();
        for i in 0..n {
            let v = &inst_vecs[i * d..(i + 1) * d];
            scores_buf.push(vec_dot(start_vec, v) * scale);
        }
        c.flops += (n * 2 * d) as u128;
        softmax(scores_buf);
        c.flops += (3 * n) as u128;
        for i in 0..n {
            let v = &inst_vecs[i * d..(i + 1) * d];
            vec_axpy(out, scores_buf[i], v);
        }
        c.flops += (n * 2 * d) as u128;
        // The second pass re-reads the stored instance vectors.
        c.bytes_read += (n * d) as u128 * F32;
    } else {
        for i in 0..n {
            let v = &inst_vecs[i * d..(i + 1) * d];
            vec_add(out, v);
        }
        vec_scale(out, 1.0 / n as f32);
        c.flops += (n * d + d) as u128;
    }
    c.bytes_written += d as u128 * F32;
}

/// Weighted semantic aggregation across the metapath results of one
/// start type (`weights` sum to 1; the uniform mean is the special
/// case `1/k`).
fn semantic_combine(
    results: &[&Matrix],
    weights: &[f32],
    rows: usize,
    d: usize,
    c: &mut OpCounters,
) -> Matrix {
    let mut out = Matrix::zeros(rows, d);
    let k = results.len();
    for r in 0..rows {
        let row = out.row_mut(r);
        for (m, &w) in results.iter().zip(weights) {
            vec_axpy(row, w, m.row(r));
        }
    }
    c.flops += (rows * 2 * k * d) as u128;
    c.bytes_read += (rows * k * d) as u128 * F32;
    c.bytes_written += (rows * d) as u128 * F32;
    out
}

/// Groups metapaths by start type and runs semantic aggregation.
fn finish_semantic(
    graph: &HeteroGraph,
    metapaths: &[Metapath],
    structural: &[Matrix],
    config: &ModelConfig,
    profile: &mut WorkloadProfile,
) -> Result<Embeddings, HgnnError> {
    let d = config.hidden_dim;
    let mut by_type: BTreeMap<VertexTypeId, Vec<(&str, &Matrix)>> = BTreeMap::new();
    for (mp, m) in metapaths.iter().zip(structural) {
        by_type
            .entry(mp.start_type())
            .or_default()
            .push((mp.name(), m));
    }
    let mut per_type = BTreeMap::new();
    for (ty, named) in by_type {
        let rows = graph.vertex_count(ty)? as usize;
        let results: Vec<&Matrix> = named.iter().map(|&(_, m)| m).collect();
        let weights = if config.weighted_semantic {
            let names: Vec<&str> = named.iter().map(|&(n, _)| n).collect();
            crate::model::semantic_weights(&names)
        } else {
            vec![1.0 / results.len() as f32; results.len()]
        };
        per_type.insert(
            ty,
            semantic_combine(&results, &weights, rows, d, &mut profile.semantic),
        );
    }
    Ok(Embeddings { per_type })
}

impl InferenceEngine for MaterializedEngine {
    fn name(&self) -> &'static str {
        "materialized"
    }

    fn run(
        &self,
        graph: &HeteroGraph,
        features: &FeatureStore,
        config: &ModelConfig,
        metapaths: &[Metapath],
    ) -> Result<Inference, HgnnError> {
        if metapaths.is_empty() {
            return Err(HgnnError::NoMetapaths);
        }
        let d = config.hidden_dim;
        let mut profile = WorkloadProfile::default();
        let projection = Projection::random(graph, d, config.seed);
        let hidden = projection.project(graph, features, &mut profile.projection)?;

        let _span = obs::span("hgnn.materialized.run", "hgnn");
        let mut structural_results = Vec::with_capacity(metapaths.len());
        let mut resident: u128 = 0;
        let mut peak_transient: u128 = 0;

        for mp in metapaths {
            let types = mp.vertex_types();
            let hops = mp.length();
            let start_ty = mp.start_type();
            let start_count = graph.vertex_count(start_ty)? as usize;

            // --- Pre-processing: materialize all instances. ---
            let insts = enumerate_instances(graph, mp, usize::MAX)?;
            let prefix_nodes = count_prefix_nodes(graph, mp)? + start_count as u128;
            profile.matching.flops += prefix_nodes;
            profile.matching.bytes_read += prefix_nodes * 4;
            profile.matching.bytes_written += insts.byte_size() as u128;
            profile.instances += insts.len() as u128;
            profile.naive_aggregations += insts.len() as u128 * hops as u128;
            resident += insts.byte_size() as u128;
            if config.kind == ModelKind::Magnn {
                // The baseline stores one intermediate vector per
                // instance for the inter-instance stage.
                resident += insts.len() as u128 * d as u128 * F32;
            }
            if config.kind == ModelKind::Shgnn {
                let nodes = count_prefix_nodes(graph, mp)?;
                resident += nodes * (8 + d as u128 * F32);
            }

            let mut s = Matrix::zeros(start_count, d);
            let c = &mut profile.structural;

            match config.kind {
                ModelKind::Magnn | ModelKind::Han => {
                    let mut inst_vecs: Vec<f32> = Vec::new();
                    let mut scores = Vec::new();
                    let mut out = vec![0.0f32; d];
                    let mut i = 0;
                    while i < insts.len() {
                        let start = insts.instance(i)[0];
                        // The run of instances sharing this start.
                        let mut j = i;
                        inst_vecs.clear();
                        while j < insts.len() && insts.instance(j)[0] == start {
                            let inst = insts.instance(j);
                            let base = inst_vecs.len();
                            match config.kind {
                                ModelKind::Magnn => {
                                    // Aggregate every vertex of the
                                    // instance, independently of all
                                    // other instances (the redundant
                                    // work).
                                    inst_vecs.extend_from_slice(hidden.vector(types[0], inst[0]));
                                    for k in 1..=hops {
                                        let h = hidden.vector(types[k], inst[k]);
                                        vec_add(&mut inst_vecs[base..base + d], h);
                                    }
                                    c.flops += (hops * d) as u128;
                                    c.bytes_read +=
                                        ((hops + 1) * d) as u128 * F32 + (inst.len() * 4) as u128;
                                    profile.performed_aggregations += hops as u128;
                                    let v = &mut inst_vecs[base..base + d];
                                    vec_scale(v, 1.0 / (hops + 1) as f32);
                                    c.flops += d as u128;
                                    c.bytes_written += d as u128 * F32;
                                }
                                ModelKind::Han => {
                                    let h = hidden.vector(types[hops], inst[hops]);
                                    inst_vecs.extend_from_slice(h);
                                    c.bytes_read += d as u128 * F32 + 8;
                                }
                                ModelKind::Shgnn => unreachable!(),
                            }
                            j += 1;
                        }
                        let n = (j - i) as u128;
                        peak_transient = peak_transient.max(n * d as u128 * F32);
                        let start_vec = hidden.vector(start_ty, start);
                        combine_instances(
                            start_vec,
                            &inst_vecs,
                            j - i,
                            d,
                            config.attention,
                            &mut out,
                            c,
                            &mut scores,
                        );
                        s.row_mut(start as usize).copy_from_slice(&out);
                        i = j;
                    }
                }
                ModelKind::Shgnn => {
                    // Evaluate the instance tree of each start vertex
                    // from the materialized, DFS-ordered instance list.
                    let mut i = 0;
                    while i < insts.len() {
                        let start = insts.instance(i)[0];
                        let mut j = i;
                        while j < insts.len() && insts.instance(j)[0] == start {
                            j += 1;
                        }
                        let value = shgnn_tree_value(
                            &insts,
                            i..j,
                            0,
                            hops,
                            types,
                            &hidden,
                            c,
                            &mut profile.performed_aggregations,
                        );
                        s.row_mut(start as usize).copy_from_slice(&value);
                        c.bytes_written += d as u128 * F32;
                        i = j;
                    }
                }
            }
            structural_results.push(s);
        }

        let embeddings =
            finish_semantic(graph, metapaths, &structural_results, config, &mut profile)?;
        Ok(Inference {
            embeddings,
            profile,
            resident_intermediate_bytes: resident,
            peak_transient_bytes: peak_transient,
        })
    }
}

/// Recursive tree evaluation over a DFS-ordered instance range sharing
/// a prefix of length `depth + 1`.
#[allow(clippy::too_many_arguments)]
fn shgnn_tree_value(
    insts: &hetgraph::instances::MaterializedInstances,
    range: std::ops::Range<usize>,
    depth: usize,
    hops: usize,
    types: &[VertexTypeId],
    hidden: &HiddenFeatures,
    c: &mut OpCounters,
    performed: &mut u128,
) -> Vec<f32> {
    let d = hidden.hidden_dim();
    let v = insts.instance(range.start)[depth];
    let h = hidden.vector(types[depth], v);
    c.bytes_read += d as u128 * F32;
    if depth == hops {
        return h.to_vec();
    }
    // Children: maximal runs of equal vertex at depth + 1.
    let mut sum = vec![0.0f32; d];
    let mut count = 0usize;
    let mut i = range.start;
    while i < range.end {
        let child = insts.instance(i)[depth + 1];
        let mut j = i;
        while j < range.end && insts.instance(j)[depth + 1] == child {
            j += 1;
        }
        c.bytes_read += ((j - i) * 4) as u128;
        let value = shgnn_tree_value(insts, i..j, depth + 1, hops, types, hidden, c, performed);
        vec_add(&mut sum, &value);
        c.flops += d as u128;
        *performed += 1;
        count += 1;
        i = j;
    }
    // value = 0.5 * h(v) + 0.5 * mean(children)
    vec_scale(&mut sum, 0.5 / count as f32);
    vec_axpy(&mut sum, 0.5, h);
    c.flops += 3 * d as u128;
    sum
}

impl InferenceEngine for OnTheFlyEngine {
    fn name(&self) -> &'static str {
        "on-the-fly"
    }

    fn run(
        &self,
        graph: &HeteroGraph,
        features: &FeatureStore,
        config: &ModelConfig,
        metapaths: &[Metapath],
    ) -> Result<Inference, HgnnError> {
        if metapaths.is_empty() {
            return Err(HgnnError::NoMetapaths);
        }
        let d = config.hidden_dim;
        let mut profile = WorkloadProfile::default();
        let projection = Projection::random(graph, d, config.seed);
        let hidden = projection.project(graph, features, &mut profile.projection)?;

        let _span = obs::span("hgnn.on_the_fly.run", "hgnn");
        let mut structural_results = Vec::with_capacity(metapaths.len());
        let mut peak_transient: u128 = 0;

        for mp in metapaths {
            let types = mp.vertex_types().to_vec();
            let hops = mp.length();
            let start_ty = mp.start_type();
            let start_count = graph.vertex_count(start_ty)? as usize;
            profile.instances += count_instances(graph, mp)?;
            profile.naive_aggregations += count_instances(graph, mp)? * hops as u128;

            let mut s = Matrix::zeros(start_count, d);
            // One arena for the whole metapath; every buffer is either
            // cleared here or fully overwritten by the walk before it
            // is read, so recycling across start vertices is safe.
            let mut scratch = WalkScratch::new(hops, d);

            for start in 0..start_count as u32 {
                let WalkScratch {
                    prefix,
                    child_sum,
                    child_count,
                    current,
                    inst_vecs,
                    scores,
                    out,
                } = &mut scratch;
                inst_vecs.clear();
                let mut n_instances = 0usize;

                let matching = &mut profile.matching;
                let structural = &mut profile.structural;
                let performed = &mut profile.performed_aggregations;

                walk_prefix_tree(graph, mp, VertexId::new(start), |ev| match ev {
                    WalkEvent::Enter(depth, u) => {
                        matching.flops += 1;
                        matching.bytes_read += 4;
                        current[depth] = u;
                        match config.kind {
                            ModelKind::Magnn => {
                                let h = hidden.vector(types[depth], u);
                                structural.bytes_read += d as u128 * F32;
                                if depth == 0 {
                                    prefix[0].copy_from_slice(h);
                                } else {
                                    // One aggregation per prefix-tree
                                    // node: extend the shared prefix.
                                    let (lo, hi) = prefix.split_at_mut(depth);
                                    hi[0].copy_from_slice(&lo[depth - 1]);
                                    vec_add(&mut hi[0], h);
                                    structural.flops += d as u128;
                                    *performed += 1;
                                }
                            }
                            ModelKind::Shgnn => {
                                child_sum[depth].fill(0.0);
                                child_count[depth] = 0;
                            }
                            ModelKind::Han => {}
                        }
                    }
                    WalkEvent::Leaf => {
                        n_instances += 1;
                        match config.kind {
                            ModelKind::Magnn => {
                                let base = inst_vecs.len();
                                inst_vecs.extend_from_slice(&prefix[hops]);
                                let v = &mut inst_vecs[base..base + d];
                                vec_scale(v, 1.0 / (hops + 1) as f32);
                                structural.flops += d as u128;
                                structural.bytes_written += d as u128 * F32;
                            }
                            ModelKind::Han => {
                                let h = hidden.vector(types[hops], current[hops]);
                                structural.bytes_read += d as u128 * F32;
                                inst_vecs.extend_from_slice(h);
                            }
                            ModelKind::Shgnn => {}
                        }
                    }
                    WalkEvent::Exit(depth) => {
                        if config.kind == ModelKind::Shgnn {
                            let v = current[depth];
                            if depth == hops {
                                let h = hidden.vector(types[depth], v);
                                structural.bytes_read += d as u128 * F32;
                                vec_add(&mut child_sum[depth - 1], h);
                                structural.flops += d as u128;
                                child_count[depth - 1] += 1;
                                *performed += 1;
                            } else if child_count[depth] > 0 {
                                let h = hidden.vector(types[depth], v);
                                structural.bytes_read += d as u128 * F32;
                                let mut value = std::mem::take(&mut child_sum[depth]);
                                vec_scale(&mut value, 0.5 / child_count[depth] as f32);
                                vec_axpy(&mut value, 0.5, h);
                                structural.flops += 3 * d as u128;
                                if depth == 0 {
                                    s.row_mut(v as usize).copy_from_slice(&value);
                                    structural.bytes_written += d as u128 * F32;
                                } else {
                                    vec_add(&mut child_sum[depth - 1], &value);
                                    structural.flops += d as u128;
                                    child_count[depth - 1] += 1;
                                    *performed += 1;
                                }
                                child_sum[depth] = value; // reuse allocation
                            }
                        }
                    }
                })?;

                if config.kind != ModelKind::Shgnn && n_instances > 0 {
                    peak_transient = peak_transient.max((n_instances * d) as u128 * F32);
                    let start_vec = hidden.vector(start_ty, start);
                    combine_instances(
                        start_vec,
                        inst_vecs,
                        n_instances,
                        d,
                        config.attention,
                        out,
                        &mut profile.structural,
                        scores,
                    );
                    s.row_mut(start as usize).copy_from_slice(out);
                }
            }
            structural_results.push(s);
        }

        let embeddings =
            finish_semantic(graph, metapaths, &structural_results, config, &mut profile)?;
        Ok(Inference {
            embeddings,
            profile,
            resident_intermediate_bytes: 0,
            peak_transient_bytes: peak_transient,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph::datasets::{generate, DatasetId, GeneratorConfig};

    fn setup(id: DatasetId, scale: f64) -> (hetgraph::datasets::Dataset, FeatureStore) {
        let ds = generate(id, GeneratorConfig::at_scale(scale));
        let fs = FeatureStore::random(&ds.graph, 11);
        (ds, fs)
    }

    fn run_both(kind: ModelKind, attention: bool) -> (Inference, Inference) {
        let (ds, fs) = setup(DatasetId::Imdb, 0.02);
        let config = ModelConfig::new(kind)
            .with_hidden_dim(8)
            .with_attention(attention);
        let a = MaterializedEngine
            .run(&ds.graph, &fs, &config, &ds.metapaths)
            .unwrap();
        let b = OnTheFlyEngine
            .run(&ds.graph, &fs, &config, &ds.metapaths)
            .unwrap();
        (a, b)
    }

    #[test]
    fn magnn_engines_agree() {
        let (a, b) = run_both(ModelKind::Magnn, true);
        assert!(a.embeddings.max_abs_diff(&b.embeddings) < 1e-4);
    }

    #[test]
    fn magnn_mean_engines_agree() {
        let (a, b) = run_both(ModelKind::Magnn, false);
        assert!(a.embeddings.max_abs_diff(&b.embeddings) < 1e-4);
    }

    #[test]
    fn han_engines_agree() {
        let (a, b) = run_both(ModelKind::Han, true);
        assert!(a.embeddings.max_abs_diff(&b.embeddings) < 1e-4);
    }

    #[test]
    fn shgnn_engines_agree() {
        let (a, b) = run_both(ModelKind::Shgnn, false);
        assert!(a.embeddings.max_abs_diff(&b.embeddings) < 1e-4);
    }

    #[test]
    fn reuse_eliminates_magnn_redundancy() {
        let (a, b) = run_both(ModelKind::Magnn, true);
        assert!(
            b.profile.performed_aggregations < a.profile.performed_aggregations,
            "reuse {} >= naive {}",
            b.profile.performed_aggregations,
            a.profile.performed_aggregations
        );
        assert!(b.profile.redundancy_eliminated() > 0.0);
        // Figure 5: MAGNN redundancy is substantial.
        assert!(b.profile.redundancy_eliminated() > 0.10);
    }

    #[test]
    fn on_the_fly_has_no_resident_intermediate() {
        let (a, b) = run_both(ModelKind::Magnn, true);
        assert!(a.resident_intermediate_bytes > 0);
        assert_eq!(b.resident_intermediate_bytes, 0);
    }

    #[test]
    fn matching_writes_only_in_baseline() {
        let (a, b) = run_both(ModelKind::Han, true);
        assert!(a.profile.matching.bytes_written > 0);
        assert_eq!(b.profile.matching.bytes_written, 0);
    }

    #[test]
    fn instance_counts_match() {
        let (a, b) = run_both(ModelKind::Magnn, true);
        assert_eq!(a.profile.instances, b.profile.instances);
        assert!(a.profile.instances > 0);
    }

    #[test]
    fn structural_dominates_projection_bytes() {
        // The memory-bound character of HGNNs (Figure 4): structural
        // aggregation moves far more irregular bytes than projection on
        // instance-heavy datasets.
        let (ds, fs) = setup(DatasetId::Lastfm, 0.05);
        let config = ModelConfig::new(ModelKind::Magnn).with_hidden_dim(8);
        let inf = MaterializedEngine
            .run(&ds.graph, &fs, &config, &ds.metapaths)
            .unwrap();
        assert!(inf.profile.structural.bytes() > inf.profile.projection.bytes());
    }

    #[test]
    fn empty_metapaths_is_error() {
        let (ds, fs) = setup(DatasetId::Imdb, 0.02);
        let config = ModelConfig::default();
        assert!(matches!(
            MaterializedEngine.run(&ds.graph, &fs, &config, &[]),
            Err(HgnnError::NoMetapaths)
        ));
    }

    #[test]
    fn embeddings_cover_start_types() {
        let (ds, fs) = setup(DatasetId::Imdb, 0.02);
        let config = ModelConfig::new(ModelKind::Han).with_hidden_dim(8);
        let inf = OnTheFlyEngine
            .run(&ds.graph, &fs, &config, &ds.metapaths)
            .unwrap();
        // IMDB metapaths start at M, D, and A.
        assert_eq!(inf.embeddings.types().count(), 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let (a1, _) = run_both(ModelKind::Magnn, true);
        let (a2, _) = run_both(ModelKind::Magnn, true);
        assert_eq!(a1.embeddings.max_abs_diff(&a2.embeddings), 0.0);
        assert_eq!(a1.profile, a2.profile);
    }

    #[test]
    fn performed_matches_prefix_nodes_for_magnn_reuse() {
        let (ds, fs) = setup(DatasetId::Imdb, 0.02);
        let config = ModelConfig::new(ModelKind::Magnn).with_hidden_dim(8);
        let inf = OnTheFlyEngine
            .run(&ds.graph, &fs, &config, &ds.metapaths)
            .unwrap();
        let expected: u128 = ds
            .metapaths
            .iter()
            .map(|mp| count_prefix_nodes(&ds.graph, mp).unwrap())
            .sum();
        assert_eq!(inf.profile.performed_aggregations, expected);
    }

    #[test]
    fn weighted_semantic_engines_agree_and_differ_from_mean() {
        let (ds, fs) = setup(DatasetId::Imdb, 0.02);
        let weighted = ModelConfig::new(ModelKind::Magnn)
            .with_hidden_dim(8)
            .with_attention(false)
            .with_weighted_semantic(true);
        let a = MaterializedEngine
            .run(&ds.graph, &fs, &weighted, &ds.metapaths)
            .unwrap();
        let b = OnTheFlyEngine
            .run(&ds.graph, &fs, &weighted, &ds.metapaths)
            .unwrap();
        assert!(a.embeddings.max_abs_diff(&b.embeddings) < 1e-4);
        // Weighted differs from the uniform mean on multi-metapath
        // start types.
        let uniform = OnTheFlyEngine
            .run(
                &ds.graph,
                &fs,
                &weighted.with_weighted_semantic(false),
                &ds.metapaths,
            )
            .unwrap();
        assert!(b.embeddings.max_abs_diff(&uniform.embeddings) > 1e-6);
    }

    #[test]
    fn dblp_long_metapaths_work() {
        let (ds, fs) = setup(DatasetId::Dblp, 0.02);
        let config = ModelConfig::new(ModelKind::Magnn).with_hidden_dim(8);
        let a = MaterializedEngine
            .run(&ds.graph, &fs, &config, &ds.metapaths)
            .unwrap();
        let b = OnTheFlyEngine
            .run(&ds.graph, &fs, &config, &ds.metapaths)
            .unwrap();
        assert!(a.embeddings.max_abs_diff(&b.embeddings) < 1e-4);
    }
}

//! Operation counters and workload profiles.
//!
//! Every execution engine in this crate counts the floating-point
//! operations and bytes it moves, per HGNN phase. The resulting
//! [`WorkloadProfile`] is the single currency all performance models
//! consume: the analytical baseline platforms (CPU/GPU/AWB-GCN/HyGCN/
//! RecNMP) and the roofline characterizations of Figures 3 and 4 are
//! all functions of these numbers.

use serde::{Deserialize, Serialize};

/// Raw operation counts of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounters {
    /// Floating-point operations (adds and multiplies each count 1).
    pub flops: u128,
    /// Bytes read from memory.
    pub bytes_read: u128,
    /// Bytes written to memory.
    pub bytes_written: u128,
}

impl OpCounters {
    /// Total bytes moved.
    pub fn bytes(&self) -> u128 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity in flops per byte; `0` when no bytes move.
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.bytes();
        if b == 0 {
            0.0
        } else {
            self.flops as f64 / b as f64
        }
    }

    /// Accumulates another counter into this one.
    pub fn merge(&mut self, other: &OpCounters) {
        self.flops += other.flops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

impl std::ops::AddAssign<&OpCounters> for OpCounters {
    fn add_assign(&mut self, rhs: &OpCounters) {
        self.merge(rhs);
    }
}

impl std::ops::AddAssign for OpCounters {
    fn add_assign(&mut self, rhs: OpCounters) {
        self.merge(&rhs);
    }
}

impl std::ops::Add for OpCounters {
    type Output = OpCounters;

    fn add(mut self, rhs: OpCounters) -> OpCounters {
        self += rhs;
        self
    }
}

impl std::iter::Sum for OpCounters {
    fn sum<I: Iterator<Item = OpCounters>>(iter: I) -> OpCounters {
        iter.fold(OpCounters::default(), |acc, c| acc + c)
    }
}

impl<'a> std::iter::Sum<&'a OpCounters> for OpCounters {
    fn sum<I: Iterator<Item = &'a OpCounters>>(iter: I) -> OpCounters {
        iter.fold(OpCounters::default(), |mut acc, c| {
            acc += c;
            acc
        })
    }
}

/// The four phases of the HGNN pipeline (Figure 2 plus the
/// pre-processing matching phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Metapath instance matching (pre-processing in the baseline;
    /// on-the-fly in MetaNMP).
    Matching,
    /// Per-type dense feature projection.
    Projection,
    /// Structural (intra- and inter-instance) aggregation.
    Structural,
    /// Semantic (inter-metapath) aggregation.
    Semantic,
}

impl Phase {
    /// All phases in pipeline order.
    pub const ALL: [Phase; 4] = [
        Phase::Matching,
        Phase::Projection,
        Phase::Structural,
        Phase::Semantic,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Matching => "matching",
            Phase::Projection => "projection",
            Phase::Structural => "structural",
            Phase::Semantic => "semantic",
        }
    }
}

/// A complete measured workload profile of one inference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Instance matching (pre-processing) counters.
    pub matching: OpCounters,
    /// Feature projection counters.
    pub projection: OpCounters,
    /// Structural aggregation counters.
    pub structural: OpCounters,
    /// Semantic aggregation counters.
    pub semantic: OpCounters,
    /// Total metapath instances processed.
    pub instances: u128,
    /// Vector aggregations a fully naive dataflow would perform.
    pub naive_aggregations: u128,
    /// Vector aggregations actually performed by the engine.
    pub performed_aggregations: u128,
}

impl WorkloadProfile {
    /// Counters of one phase.
    pub fn phase(&self, phase: Phase) -> &OpCounters {
        match phase {
            Phase::Matching => &self.matching,
            Phase::Projection => &self.projection,
            Phase::Structural => &self.structural,
            Phase::Semantic => &self.semantic,
        }
    }

    /// Mutable counters of one phase.
    pub fn phase_mut(&mut self, phase: Phase) -> &mut OpCounters {
        match phase {
            Phase::Matching => &mut self.matching,
            Phase::Projection => &mut self.projection,
            Phase::Structural => &mut self.structural,
            Phase::Semantic => &mut self.semantic,
        }
    }

    /// Sum of the three *inference* phases (the paper excludes matching
    /// from inference time).
    pub fn inference_totals(&self) -> OpCounters {
        [&self.projection, &self.structural, &self.semantic]
            .into_iter()
            .sum()
    }

    /// Sum over all four phases.
    pub fn totals(&self) -> OpCounters {
        self.inference_totals() + self.matching
    }

    /// Fraction of naive aggregation work that was redundant
    /// (Figure 5); zero when the engine performed all of it.
    pub fn redundancy_eliminated(&self) -> f64 {
        if self.naive_aggregations == 0 {
            0.0
        } else {
            1.0 - self.performed_aggregations as f64 / self.naive_aggregations as f64
        }
    }

    /// Merges another profile (e.g. across metapaths) into this one.
    pub fn merge(&mut self, other: &WorkloadProfile) {
        self.matching += &other.matching;
        self.projection += &other.projection;
        self.structural += &other.structural;
        self.semantic += &other.semantic;
        self.instances += other.instances;
        self.naive_aggregations += other.naive_aggregations;
        self.performed_aggregations += other.performed_aggregations;
    }
}

/// Relative time share of each phase under a bandwidth-bound execution
/// (used for the Figure 4a breakdown): phases are weighted by
/// `max(bytes / bandwidth, flops / compute)` on the given platform
/// ratios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Share of inference time per phase, in `[0, 1]`, summing to 1
    /// over [`Phase::Projection`], [`Phase::Structural`],
    /// [`Phase::Semantic`].
    pub shares: [f64; 3],
}

impl PhaseBreakdown {
    /// Computes the breakdown from a profile given a platform's peak
    /// compute (flops/s) and bandwidth (bytes/s).
    pub fn from_profile(profile: &WorkloadProfile, peak_flops: f64, peak_bw: f64) -> Self {
        let time = |c: &OpCounters| {
            let t_c = c.flops as f64 / peak_flops;
            let t_b = c.bytes() as f64 / peak_bw;
            t_c.max(t_b)
        };
        let t = [
            time(&profile.projection),
            time(&profile.structural),
            time(&profile.semantic),
        ];
        let total: f64 = t.iter().sum();
        let shares = if total > 0.0 {
            [t[0] / total, t[1] / total, t[2] / total]
        } else {
            [0.0; 3]
        };
        PhaseBreakdown { shares }
    }

    /// Share of the structural-aggregation phase.
    pub fn structural_share(&self) -> f64 {
        self.shares[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_and_intensity() {
        let mut a = OpCounters {
            flops: 100,
            bytes_read: 40,
            bytes_written: 10,
        };
        let b = OpCounters {
            flops: 50,
            bytes_read: 10,
            bytes_written: 0,
        };
        a.merge(&b);
        assert_eq!(a.flops, 150);
        assert_eq!(a.bytes(), 60);
        assert!((a.arithmetic_intensity() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn add_assign_and_sum_match_merge() {
        let parts = [
            OpCounters {
                flops: 1,
                bytes_read: 2,
                bytes_written: 3,
            },
            OpCounters {
                flops: 10,
                bytes_read: 20,
                bytes_written: 30,
            },
            OpCounters {
                flops: 100,
                bytes_read: 200,
                bytes_written: 300,
            },
        ];
        let mut merged = OpCounters::default();
        for p in &parts {
            merged.merge(p);
        }
        let summed: OpCounters = parts.iter().sum();
        assert_eq!(summed, merged);
        let mut add_assigned = OpCounters::default();
        for p in parts {
            add_assigned += p;
        }
        assert_eq!(add_assigned, merged);
        assert_eq!(parts[0] + parts[1] + parts[2], merged);
    }

    #[test]
    fn zero_bytes_zero_intensity() {
        let c = OpCounters::default();
        assert_eq!(c.arithmetic_intensity(), 0.0);
    }

    #[test]
    fn profile_phase_accessors() {
        let mut p = WorkloadProfile::default();
        p.phase_mut(Phase::Structural).flops = 7;
        assert_eq!(p.phase(Phase::Structural).flops, 7);
        assert_eq!(p.structural.flops, 7);
    }

    #[test]
    fn totals_include_matching() {
        let mut p = WorkloadProfile::default();
        p.matching.flops = 1;
        p.projection.flops = 2;
        p.structural.flops = 3;
        p.semantic.flops = 4;
        assert_eq!(p.inference_totals().flops, 9);
        assert_eq!(p.totals().flops, 10);
    }

    #[test]
    fn redundancy_ratio() {
        let p = WorkloadProfile {
            naive_aggregations: 100,
            performed_aggregations: 60,
            ..Default::default()
        };
        assert!((p.redundancy_eliminated() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn breakdown_normalizes() {
        let p = WorkloadProfile {
            projection: OpCounters {
                flops: 1000,
                bytes_read: 10,
                bytes_written: 10,
            },
            structural: OpCounters {
                flops: 10,
                bytes_read: 100_000,
                bytes_written: 0,
            },
            semantic: OpCounters {
                flops: 10,
                bytes_read: 1000,
                bytes_written: 0,
            },
            ..Default::default()
        };
        let b = PhaseBreakdown::from_profile(&p, 1e3, 1e3);
        let sum: f64 = b.shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Structural dominates: it moves 100KB at 1KB/s.
        assert!(b.structural_share() > 0.9);
    }

    #[test]
    fn phase_names() {
        assert_eq!(Phase::Matching.name(), "matching");
        assert_eq!(Phase::ALL.len(), 4);
    }
}

//! HGNN model definitions.
//!
//! Three representative metapath-based HGNNs are reproduced (§5.1):
//!
//! * **MAGNN** aggregates *every* vertex inside each metapath instance
//!   (intra-instance), then combines instances per start vertex
//!   (inter-instance), then metapaths (semantic). The intra-instance
//!   step is where redundant computation across instances lives.
//! * **HAN** aggregates only metapath-based neighbors — the *endpoint*
//!   of each instance — then performs semantic aggregation.
//! * **SHGNN** aggregates bottom-up over the tree formed by the
//!   instances dispersing from each start vertex (exactly the
//!   dependency/prefix tree of §3.2), then across metapaths.
//!
//! The models are simplified to their aggregation *structure*: learned
//! attention vectors are replaced by dot-product attention against the
//! start vertex (optional) and learned semantic attention by fixed
//! per-metapath weights ([`semantic_weights`]) or a uniform mean. The
//! structure is what determines memory traffic, redundancy, and
//! instance handling — the quantities this reproduction measures.

use serde::{Deserialize, Serialize};

/// Which HGNN model to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Metapath Aggregated GNN: full intra-instance aggregation.
    Magnn,
    /// Heterogeneous Attention Network: endpoint-only aggregation.
    Han,
    /// Structure-aware HGNN: prefix-tree aggregation.
    Shgnn,
}

impl ModelKind {
    /// All three models in the paper's order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Magnn, ModelKind::Han, ModelKind::Shgnn];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Magnn => "MAGNN",
            ModelKind::Han => "HAN",
            ModelKind::Shgnn => "SHGNN",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration shared by every execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// The model variant.
    pub kind: ModelKind,
    /// Hidden dimension every vertex type projects into.
    pub hidden_dim: usize,
    /// Enable dot-product inter-instance attention (MAGNN/HAN). When
    /// disabled, instances are combined by arithmetic mean.
    pub attention: bool,
    /// Combine metapaths with per-metapath weights (the hardware's
    /// `ConfigWeight` + `Inter_path_agg` path) instead of a uniform
    /// mean. Weights are derived deterministically from the metapath
    /// names via [`semantic_weights`], standing in for the learned
    /// semantic-attention coefficients.
    pub weighted_semantic: bool,
    /// Seed for feature and weight initialization.
    pub seed: u64,
}

impl ModelConfig {
    /// A sensible default configuration for a model kind: hidden
    /// dimension 64, attention enabled, fixed seed.
    pub fn new(kind: ModelKind) -> Self {
        ModelConfig {
            kind,
            hidden_dim: 64,
            attention: true,
            weighted_semantic: false,
            seed: 0xC0FFEE,
        }
    }

    /// Returns a copy with a different hidden dimension.
    pub fn with_hidden_dim(mut self, hidden_dim: usize) -> Self {
        self.hidden_dim = hidden_dim;
        self
    }

    /// Returns a copy with attention enabled or disabled.
    pub fn with_attention(mut self, attention: bool) -> Self {
        self.attention = attention;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with weighted semantic aggregation enabled or
    /// disabled.
    pub fn with_weighted_semantic(mut self, weighted: bool) -> Self {
        self.weighted_semantic = weighted;
        self
    }
}

/// Deterministic per-metapath semantic weights, normalized to sum to 1.
///
/// Stands in for learned semantic-attention coefficients: every
/// executor (software engines, NMP simulator) derives the same weights
/// from the metapath names, so results stay comparable.
pub fn semantic_weights(names: &[&str]) -> Vec<f32> {
    let raw: Vec<f32> = names
        .iter()
        .map(|n| {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in n.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            1.0 + (h % 1000) as f32 / 1000.0
        })
        .collect();
    let sum: f32 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig::new(ModelKind::Magnn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(ModelKind::Magnn.name(), "MAGNN");
        assert_eq!(ModelKind::Han.to_string(), "HAN");
        assert_eq!(ModelKind::ALL.len(), 3);
    }

    #[test]
    fn builder_methods() {
        let c = ModelConfig::new(ModelKind::Han)
            .with_hidden_dim(32)
            .with_attention(false)
            .with_seed(9);
        assert_eq!(c.kind, ModelKind::Han);
        assert_eq!(c.hidden_dim, 32);
        assert!(!c.attention);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn default_is_magnn() {
        let c = ModelConfig::default();
        assert_eq!(c.kind, ModelKind::Magnn);
        assert!(!c.weighted_semantic);
    }

    #[test]
    fn semantic_weights_normalize_and_differ() {
        let w = semantic_weights(&["APA", "APTPA", "APVPA"]);
        let sum: f32 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(w.iter().all(|&x| x > 0.0));
        assert_ne!(w[0], w[1]);
        // Deterministic.
        assert_eq!(w, semantic_weights(&["APA", "APTPA", "APVPA"]));
    }
}

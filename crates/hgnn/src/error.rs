//! Error types for HGNN model construction and execution.

use std::error::Error;
use std::fmt;

use hetgraph::{GraphError, VertexTypeId};

/// Errors raised by HGNN models and execution engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HgnnError {
    /// The underlying graph raised an error.
    Graph(GraphError),
    /// A vertex type has no features in the store.
    MissingFeatures(VertexTypeId),
    /// A matrix dimension disagreed with the configuration.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// The model was given no metapaths to aggregate over.
    NoMetapaths,
}

impl fmt::Display for HgnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HgnnError::Graph(e) => write!(f, "graph error: {e}"),
            HgnnError::MissingFeatures(ty) => {
                write!(f, "no features stored for vertex type {ty}")
            }
            HgnnError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            HgnnError::NoMetapaths => write!(f, "model requires at least one metapath"),
        }
    }
}

impl Error for HgnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HgnnError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for HgnnError {
    fn from(e: GraphError) -> Self {
        HgnnError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = HgnnError::DimensionMismatch {
            expected: 8,
            actual: 4,
        };
        assert!(e.to_string().contains('8'));
        assert!(HgnnError::NoMetapaths.to_string().contains("metapath"));
    }

    #[test]
    fn graph_error_has_source() {
        let e = HgnnError::from(GraphError::MetapathTooShort(1));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<HgnnError>();
    }
}

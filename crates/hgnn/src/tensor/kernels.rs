//! SIMD + cache-blocked linear-algebra kernels.
//!
//! Every dense hot path in the workspace — projection GEMVs, the
//! rank-AU aggregation loops, semantic combination — funnels through
//! this module. Two backends implement each kernel:
//!
//! * **AVX2** (`std::arch`, runtime-detected with
//!   `is_x86_feature_detected!`), and
//! * a **scalar fallback** that runs everywhere.
//!
//! The backends are *bit-identical* by construction, so swapping one
//! for the other can never change a simulator artifact:
//!
//! * Element-wise kernels ([`add`], [`axpy`], [`scale`]) compute each
//!   output element independently with a separate multiply and add
//!   (never a fused multiply-add), so lane width is unobservable.
//! * [`gemv`] vectorizes across the *output/column* dimension: output
//!   element `j` accumulates `x[i] * w[i][j]` over inputs `i` in
//!   ascending order in both backends, preserving the legacy scalar
//!   reduction order exactly.
//! * [`dot`] reduces through one **canonical fixed-stride 8-lane
//!   accumulator** ([`LaneAcc`]): element `i` lands in lane `i % 8`
//!   (chunk-major), the tail feeds lanes `0..r`, and both backends
//!   finish with the same scalar combine tree. The AVX2 path simply
//!   materializes the same eight lanes with vector instructions.
//!
//! [`project_batch`] adds cache blocking on top of [`gemv`]: the
//! output-column dimension is tiled so the active weight panel fits
//! the rank-AU feature-cache geometry (see [`TileGeometry`]), and rows
//! are tiled so the streamed input/output working set stays resident
//! alongside it. Blocking changes traversal order only *across* output
//! elements, never the reduction order *within* one, so the blocked
//! product is bit-identical to the naive row-at-a-time loop.
//!
//! Backend selection: [`force_backend`] (tests/benches) beats the
//! `METANMP_KERNELS` environment variable (`scalar` or `avx2`), which
//! beats runtime detection. Selection is re-read on every dispatch so
//! a forced backend applies immediately on all threads; because the
//! backends are bit-identical, a mid-run switch is still only a
//! performance event, never a correctness one. Under auto detection
//! the element-wise kernels additionally stay scalar below
//! [`SHORT_VEC_CUTOFF`] elements, where dispatch overhead eats the
//! vector win (see the constant's docs).
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable element-at-a-time loops (the canonical semantics).
    Scalar,
    /// AVX2 256-bit vector loops (x86-64 only, runtime-detected).
    Avx2,
}

impl Backend {
    /// Stable lowercase name for reports and benchmark artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

/// 0 = auto (env, then detection), 1 = force scalar, 2 = force AVX2.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Overrides backend selection process-wide (`None` returns to auto).
///
/// Forcing [`Backend::Avx2`] on a host without AVX2 support falls back
/// to scalar rather than faulting. Intended for differential tests and
/// the kernel benchmark; production code should leave selection on
/// auto.
pub fn force_backend(backend: Option<Backend>) {
    let v = match backend {
        None => 0,
        Some(Backend::Scalar) => 1,
        Some(Backend::Avx2) => 2,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// True when the running CPU supports the AVX2 path.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn env_backend() -> Option<Backend> {
    // Read once: the selection must not change between two phases of
    // one deterministic run because the environment mutated.
    use std::sync::OnceLock;
    static ENV: OnceLock<Option<Backend>> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("METANMP_KERNELS") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => Some(Backend::Scalar),
        Ok(v) if v.eq_ignore_ascii_case("avx2") => Some(Backend::Avx2),
        _ => None,
    })
}

/// The backend the next kernel call will dispatch to.
pub fn active_backend() -> Backend {
    let requested = match FORCED.load(Ordering::Relaxed) {
        1 => Some(Backend::Scalar),
        2 => Some(Backend::Avx2),
        _ => env_backend(),
    };
    match requested {
        Some(Backend::Scalar) => Backend::Scalar,
        Some(Backend::Avx2) if avx2_available() => Backend::Avx2,
        Some(Backend::Avx2) => Backend::Scalar,
        None if avx2_available() => Backend::Avx2,
        None => Backend::Scalar,
    }
}

/// Below this element count the auto dispatcher keeps the element-wise
/// kernels ([`dot`], [`add`], [`axpy`], [`scale`]) on the scalar path.
///
/// The AVX2 entry points cannot inline into their callers (a
/// `#[target_feature]` boundary), so a short vector pays a call plus a
/// serial horizontal reduction that the inlined, auto-vectorized scalar
/// loop does not. Measured at the engine's 64-wide hidden dimension the
/// AVX2 side swings from 1.45× faster to 1.4× *slower* depending on
/// binary layout; below the cutoff the scalar path is the predictable
/// choice. Explicit selection — [`force_backend`] or `METANMP_KERNELS`
/// — bypasses the cutoff so differential tests still drive the AVX2
/// path on short and odd-sized inputs. [`gemv`] and [`project_batch`]
/// ignore the cutoff: their register-blocked panels win at every shape
/// the engine uses.
pub const SHORT_VEC_CUTOFF: usize = 128;

/// Backend for an element-wise kernel over `len` elements: like
/// [`active_backend`], but auto-detected AVX2 yields to scalar below
/// [`SHORT_VEC_CUTOFF`]. Explicit selection is honored as-is.
fn dispatch_elementwise(len: usize) -> Backend {
    let explicit = match FORCED.load(Ordering::Relaxed) {
        1 | 2 => true,
        _ => env_backend().is_some(),
    };
    let backend = active_backend();
    if backend == Backend::Avx2 && !explicit && len < SHORT_VEC_CUTOFF {
        return Backend::Scalar;
    }
    backend
}

/// The canonical 8-lane reduction state shared by both backends.
///
/// Lane `l` owns elements `8c + l` of the product stream; the tail
/// (final partial chunk of `r` elements) feeds lanes `0..r`. Both
/// backends finish with [`LaneAcc::combine`], a fixed scalar tree, so
/// the reduction order is identical bit for bit.
#[derive(Debug, Clone, Copy)]
struct LaneAcc([f32; 8]);

impl LaneAcc {
    fn new() -> Self {
        LaneAcc([0.0; 8])
    }

    /// Folds the canonical tail: element `j` of the remainder goes to
    /// lane `j`.
    fn tail(&mut self, a: &[f32], b: &[f32]) {
        for (l, (x, y)) in a.iter().zip(b).enumerate() {
            self.0[l] += x * y;
        }
    }

    /// The fixed combine tree: pairwise over stride 4, then 2, then 1.
    fn combine(self) -> f32 {
        let l = self.0;
        let s0 = l[0] + l[4];
        let s1 = l[1] + l[5];
        let s2 = l[2] + l[6];
        let s3 = l[3] + l[7];
        (s0 + s2) + (s1 + s3)
    }
}

// ---------------------------------------------------------------------
// Scalar backend: the canonical semantics.
// ---------------------------------------------------------------------

fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = LaneAcc::new();
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let (pa, pb) = (&a[c * 8..c * 8 + 8], &b[c * 8..c * 8 + 8]);
        for l in 0..8 {
            acc.0[l] += pa[l] * pb[l];
        }
    }
    acc.tail(&a[chunks * 8..], &b[chunks * 8..]);
    acc.combine()
}

fn add_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

fn axpy_scalar(dst: &mut [f32], scale: f32, src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += scale * s;
    }
}

fn scale_scalar(v: &mut [f32], scale: f32) {
    for x in v {
        *x *= scale;
    }
}

/// `out[j] += x[i] * w[i*cols + j]` over ascending `i`, for the column
/// range `j0..j0+out.len()`. `out` is *not* cleared: callers zero it
/// (or chain accumulation over row panels).
fn gemv_acc_scalar(w: &[f32], cols: usize, x: &[f32], j0: usize, out: &mut [f32]) {
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = &w[i * cols + j0..i * cols + j0 + out.len()];
        for (o, &wv) in out.iter_mut().zip(row) {
            *o += xi * wv;
        }
    }
}

// ---------------------------------------------------------------------
// AVX2 backend (x86-64 only). Each function mirrors its scalar twin
// exactly: same per-element operations, same reduction orders.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::LaneAcc;
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let chunks = a.len() / 8;
        let mut v = _mm256_setzero_ps();
        for c in 0..chunks {
            let pa = _mm256_loadu_ps(a.as_ptr().add(c * 8));
            let pb = _mm256_loadu_ps(b.as_ptr().add(c * 8));
            // Separate mul + add keeps each lane's arithmetic identical
            // to the scalar backend (no FMA contraction).
            v = _mm256_add_ps(v, _mm256_mul_ps(pa, pb));
        }
        let mut acc = LaneAcc::new();
        _mm256_storeu_ps(acc.0.as_mut_ptr(), v);
        acc.tail(&a[chunks * 8..], &b[chunks * 8..]);
        acc.combine()
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add(dst: &mut [f32], src: &[f32]) {
        let chunks = dst.len() / 8;
        for c in 0..chunks {
            let d = _mm256_loadu_ps(dst.as_ptr().add(c * 8));
            let s = _mm256_loadu_ps(src.as_ptr().add(c * 8));
            _mm256_storeu_ps(dst.as_mut_ptr().add(c * 8), _mm256_add_ps(d, s));
        }
        super::add_scalar(&mut dst[chunks * 8..], &src[chunks * 8..]);
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(dst: &mut [f32], scale: f32, src: &[f32]) {
        let chunks = dst.len() / 8;
        let vs = _mm256_set1_ps(scale);
        for c in 0..chunks {
            let d = _mm256_loadu_ps(dst.as_ptr().add(c * 8));
            let s = _mm256_loadu_ps(src.as_ptr().add(c * 8));
            _mm256_storeu_ps(
                dst.as_mut_ptr().add(c * 8),
                _mm256_add_ps(d, _mm256_mul_ps(vs, s)),
            );
        }
        super::axpy_scalar(&mut dst[chunks * 8..], scale, &src[chunks * 8..]);
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale(v: &mut [f32], scale: f32) {
        let chunks = v.len() / 8;
        let vs = _mm256_set1_ps(scale);
        for c in 0..chunks {
            let d = _mm256_loadu_ps(v.as_ptr().add(c * 8));
            _mm256_storeu_ps(v.as_mut_ptr().add(c * 8), _mm256_mul_ps(d, vs));
        }
        super::scale_scalar(&mut v[chunks * 8..], scale);
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2, `w` holds at least
    /// `x.len()` rows of `cols` floats, and `j0 + out.len() <= cols`.
    ///
    /// Output columns are processed in register-resident panels (4, 2,
    /// then 1 vector wide, then a scalar tail): each panel's
    /// accumulators live in ymm registers across the *entire* input
    /// loop, so `out` is loaded and stored once per panel instead of
    /// once per input row — the naive row-sweep layout is exactly what
    /// LLVM already auto-vectorizes in the scalar backend, and beats
    /// nothing. Per output element the arithmetic is still one
    /// mul + add per nonzero `x[i]` in ascending `i` order, so the
    /// result stays bit-identical to the scalar backend.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemv_acc(w: &[f32], cols: usize, x: &[f32], j0: usize, out: &mut [f32]) {
        let n = out.len();
        let mut j = 0;
        while j + 32 <= n {
            let op = out.as_mut_ptr().add(j);
            let mut a0 = _mm256_loadu_ps(op);
            let mut a1 = _mm256_loadu_ps(op.add(8));
            let mut a2 = _mm256_loadu_ps(op.add(16));
            let mut a3 = _mm256_loadu_ps(op.add(24));
            for (i, &xi) in x.iter().enumerate() {
                if xi == 0.0 {
                    continue; // mirrors the scalar skip exactly
                }
                let row = w.as_ptr().add(i * cols + j0 + j);
                let vx = _mm256_set1_ps(xi);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(vx, _mm256_loadu_ps(row)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(vx, _mm256_loadu_ps(row.add(8))));
                a2 = _mm256_add_ps(a2, _mm256_mul_ps(vx, _mm256_loadu_ps(row.add(16))));
                a3 = _mm256_add_ps(a3, _mm256_mul_ps(vx, _mm256_loadu_ps(row.add(24))));
            }
            _mm256_storeu_ps(op, a0);
            _mm256_storeu_ps(op.add(8), a1);
            _mm256_storeu_ps(op.add(16), a2);
            _mm256_storeu_ps(op.add(24), a3);
            j += 32;
        }
        while j + 8 <= n {
            let op = out.as_mut_ptr().add(j);
            let mut a0 = _mm256_loadu_ps(op);
            for (i, &xi) in x.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let row = w.as_ptr().add(i * cols + j0 + j);
                let vx = _mm256_set1_ps(xi);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(vx, _mm256_loadu_ps(row)));
            }
            _mm256_storeu_ps(op, a0);
            j += 8;
        }
        if j < n {
            for (i, &xi) in x.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let row = &w[i * cols + j0 + j..i * cols + j0 + n];
                for (o, &wv) in out[j..n].iter_mut().zip(row) {
                    *o += xi * wv;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Public dispatching kernels.
// ---------------------------------------------------------------------

/// Dot product through the canonical 8-lane reduction.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if dispatch_elementwise(a.len()) == Backend::Avx2 {
        // SAFETY: dispatch verified AVX2 support at runtime.
        return unsafe { avx2::dot(a, b) };
    }
    dot_scalar(a, b)
}

/// Adds `src` into `dst` element-wise.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn add(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if dispatch_elementwise(dst.len()) == Backend::Avx2 {
        // SAFETY: dispatch verified AVX2 support at runtime.
        unsafe { avx2::add(dst, src) };
        return;
    }
    add_scalar(dst, src);
}

/// Adds `scale × src` into `dst` element-wise.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn axpy(dst: &mut [f32], scale: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if dispatch_elementwise(dst.len()) == Backend::Avx2 {
        // SAFETY: dispatch verified AVX2 support at runtime.
        unsafe { avx2::axpy(dst, scale, src) };
        return;
    }
    axpy_scalar(dst, scale, src);
}

/// Scales `v` in place.
pub fn scale(v: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if dispatch_elementwise(v.len()) == Backend::Avx2 {
        // SAFETY: dispatch verified AVX2 support at runtime.
        unsafe { avx2::scale(v, s) };
        return;
    }
    scale_scalar(v, s);
}

/// Row-vector × matrix: `out = x · w` where `w` is row-major
/// `x.len() × cols`. Vectorized across the output/column dimension, so
/// each output element's reduction over inputs runs in ascending `i`
/// order — identical to the scalar loop.
///
/// # Panics
///
/// Panics if `w.len() != x.len() * cols` or `out.len() != cols`.
pub fn gemv(w: &[f32], cols: usize, x: &[f32], out: &mut [f32]) {
    assert_eq!(w.len(), x.len() * cols, "weight shape mismatch");
    assert_eq!(out.len(), cols, "output length mismatch");
    out.fill(0.0);
    gemv_acc(w, cols, x, 0, out);
}

/// Accumulating column-range GEMV used by the blocked batch kernel.
fn gemv_acc(w: &[f32], cols: usize, x: &[f32], j0: usize, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if active_backend() == Backend::Avx2 {
        // SAFETY: dispatch verified AVX2 support at runtime; shape
        // invariants are asserted by the public callers.
        unsafe { avx2::gemv_acc(w, cols, x, j0, out) };
        return;
    }
    gemv_acc_scalar(w, cols, x, j0, out);
}

/// Cache-blocking geometry for [`project_batch`], expressed in the
/// terms of the paper's rank-AU: a fixed-size feature cache that must
/// hold the active weight panel plus the streaming input/output rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGeometry {
    /// Input rows processed per tile before the column panel advances.
    pub row_block: usize,
    /// Output columns per weight panel (multiple of the 8-lane width).
    pub col_block: usize,
}

impl TileGeometry {
    /// The paper's default rank-AU feature cache (Table 2: 256 KB).
    pub const DEFAULT_CACHE_BYTES: usize = 256 * 1024;

    /// Derives tile sizes from a cache budget and the projection shape
    /// (`in_dim × out_dim` weights).
    ///
    /// Half the budget holds the weight panel (`in_dim × col_block`
    /// floats); the other half covers the `row_block` input rows and
    /// their output slices streamed against it. `col_block` is rounded
    /// to the 8-lane width and both blocks are clamped to at least one
    /// unit so degenerate shapes still tile.
    pub fn for_cache(cache_bytes: usize, in_dim: usize, out_dim: usize) -> Self {
        const F32: usize = std::mem::size_of::<f32>();
        let half = (cache_bytes / 2).max(F32);
        let panel_cols = half / (F32 * in_dim.max(1));
        let col_block = (panel_cols / 8 * 8).clamp(8, out_dim.max(8));
        let row_bytes = F32 * (in_dim + col_block);
        let row_block = (half / row_bytes.max(F32)).clamp(1, 4096);
        TileGeometry {
            row_block,
            col_block,
        }
    }
}

impl Default for TileGeometry {
    fn default() -> Self {
        // Shape-agnostic default: the 256 KB cache against the
        // workspace's canonical 64 × 64 projection.
        TileGeometry::for_cache(Self::DEFAULT_CACHE_BYTES, 64, 64)
    }
}

/// Batched, cache-blocked projection: `out = x · w` where `x` is
/// row-major `n × k`, `w` is row-major `k × m`, and `out` is row-major
/// `n × m`.
///
/// Traversal: for each column panel (`col_block` wide), stream row
/// tiles (`row_block` tall) against it, so the panel stays resident in
/// a feature-cache-sized working set. Every output element still
/// reduces over `i` in ascending order, so the result is bit-identical
/// to `n` independent [`gemv`] calls — and to the legacy scalar loop.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn project_batch(
    x: &[f32],
    n: usize,
    k: usize,
    w: &[f32],
    m: usize,
    out: &mut [f32],
    tiles: TileGeometry,
) {
    assert_eq!(x.len(), n * k, "input shape mismatch");
    assert_eq!(w.len(), k * m, "weight shape mismatch");
    assert_eq!(out.len(), n * m, "output shape mismatch");
    out.fill(0.0);
    let col_block = tiles.col_block.max(1);
    let row_block = tiles.row_block.max(1);
    let mut j0 = 0;
    while j0 < m {
        let jw = col_block.min(m - j0);
        let mut r0 = 0;
        while r0 < n {
            let rh = row_block.min(n - r0);
            for r in r0..r0 + rh {
                let xr = &x[r * k..(r + 1) * k];
                let or = &mut out[r * m + j0..r * m + j0 + jw];
                gemv_acc(w, m, xr, j0, or);
            }
            r0 += rh;
        }
        j0 += jw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the process-wide backend override.
    fn backend_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn seeded(len: usize, seed: u64) -> Vec<f32> {
        // splitmix64-driven values in [-1, 1), deterministic per seed.
        let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
        (0..len)
            .map(|_| {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z >> 40) as f32 / (1u64 << 23) as f32 - 1.0
            })
            .collect()
    }

    #[test]
    fn canonical_dot_matches_8_lane_reference() {
        // Hand-computed canonical reduction for a short vector.
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let b = [1.0f32; 10];
        // Lanes: chunk 0 fills lanes 0..8 with 1..=8; tail (9, 10) adds
        // to lanes 0 and 1.
        let lanes = [1.0 + 9.0, 2.0 + 10.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let want = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
            + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
        assert_eq!(dot_scalar(&a, &b), want);
    }

    #[test]
    fn backends_agree_bit_for_bit() {
        let _guard = backend_lock();
        if !avx2_available() {
            return;
        }
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 200] {
            let a = seeded(len, 1 + len as u64);
            let b = seeded(len, 1000 + len as u64);
            force_backend(Some(Backend::Scalar));
            let ds = dot(&a, &b);
            let mut adds = a.clone();
            add(&mut adds, &b);
            let mut axs = a.clone();
            axpy(&mut axs, 0.37, &b);
            let mut scs = a.clone();
            scale(&mut scs, -1.75);
            force_backend(Some(Backend::Avx2));
            let dv = dot(&a, &b);
            let mut addv = a.clone();
            add(&mut addv, &b);
            let mut axv = a.clone();
            axpy(&mut axv, 0.37, &b);
            let mut scv = a.clone();
            scale(&mut scv, -1.75);
            force_backend(None);
            assert_eq!(ds.to_bits(), dv.to_bits(), "dot len {len}");
            assert_eq!(adds, addv, "add len {len}");
            assert_eq!(axs, axv, "axpy len {len}");
            assert_eq!(scs, scv, "scale len {len}");
        }
    }

    #[test]
    fn gemv_matches_reference_loop() {
        let _guard = backend_lock();
        let (rows, cols) = (13, 21);
        let w = seeded(rows * cols, 7);
        let x = seeded(rows, 8);
        let mut out = vec![0.0f32; cols];
        gemv(&w, cols, &x, &mut out);
        let mut want = vec![0.0f32; cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for j in 0..cols {
                want[j] += xi * w[i * cols + j];
            }
        }
        assert_eq!(out, want);
    }

    #[test]
    fn project_batch_is_bit_identical_to_per_row_gemv() {
        let _guard = backend_lock();
        let (n, k, m) = (17, 29, 23);
        let x = seeded(n * k, 3);
        let w = seeded(k * m, 4);
        let mut blocked = vec![0.0f32; n * m];
        // A deliberately tiny tile so blocking actually splits both
        // dimensions.
        let tiles = TileGeometry {
            row_block: 3,
            col_block: 8,
        };
        project_batch(&x, n, k, &w, m, &mut blocked, tiles);
        let mut naive = vec![0.0f32; n * m];
        for r in 0..n {
            gemv(
                &w,
                m,
                &x[r * k..(r + 1) * k],
                &mut naive[r * m..(r + 1) * m],
            );
        }
        assert_eq!(blocked, naive);
    }

    #[test]
    fn tile_geometry_fits_the_cache_budget() {
        let g = TileGeometry::for_cache(256 * 1024, 64, 64);
        // Weight panel fits half the cache.
        assert!(64 * g.col_block * 4 <= 128 * 1024);
        assert_eq!(g.col_block % 8, 0);
        assert!(g.row_block >= 1);
        // Degenerate shapes still tile.
        let tiny = TileGeometry::for_cache(64, 1, 1);
        assert!(tiny.col_block >= 8 && tiny.row_block >= 1);
    }

    #[test]
    fn forced_backend_round_trips() {
        let _guard = backend_lock();
        force_backend(Some(Backend::Scalar));
        assert_eq!(active_backend(), Backend::Scalar);
        force_backend(None);
        let auto = active_backend();
        assert_eq!(
            auto == Backend::Avx2,
            avx2_available() && env_backend() != Some(Backend::Scalar)
        );
    }
}

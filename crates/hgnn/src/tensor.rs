//! Minimal dense linear algebra: row-major `f32` matrices and the
//! feature stores built from them.
//!
//! The workspace deliberately avoids external BLAS — the kernels here
//! are small, deterministic, and easy to instrument, which matters more
//! than raw speed for a simulator whose outputs are op counts and
//! functional reference results. The dense inner loops live in
//! [`kernels`], which provides a runtime-detected AVX2 backend with a
//! bit-identical scalar fallback; the entry points in this module keep
//! their legacy signatures and delegate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

pub mod kernels;

/// A dense row-major `f32` matrix.
///
/// ```
/// use hgnn::tensor::Matrix;
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix with i.i.d. uniform values in `[-0.5, 0.5)`,
    /// deterministic for a given seed.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.gen::<f32>() - 0.5).collect();
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Multiplies a row vector by this matrix: `out = x · self`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows()` or `out.len() != cols()`.
    pub fn vec_mul(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "input length mismatch");
        assert_eq!(out.len(), self.cols, "output length mismatch");
        kernels::gemv(&self.data, self.cols, x, out);
    }

    /// Maximum absolute difference between two matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Bytes used by the value buffer.
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Adds `src` into `dst` element-wise.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn vec_add(dst: &mut [f32], src: &[f32]) {
    kernels::add(dst, src);
}

/// Adds `scale × src` into `dst` element-wise.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn vec_axpy(dst: &mut [f32], scale: f32, src: &[f32]) {
    kernels::axpy(dst, scale, src);
}

/// Scales `v` in place.
pub fn vec_scale(v: &mut [f32], scale: f32) {
    kernels::scale(v, scale);
}

/// Dot product of two vectors, reduced through the canonical 8-lane
/// order defined in [`kernels`] (identical in both backends).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn vec_dot(a: &[f32], b: &[f32]) -> f32 {
    kernels::dot(a, b)
}

/// In-place numerically stable softmax.
pub fn softmax(scores: &mut [f32]) {
    if scores.is_empty() {
        return;
    }
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    if sum > 0.0 {
        for s in scores.iter_mut() {
            *s /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(m.byte_size(), 24);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Matrix::random(3, 3, 7);
        let b = Matrix::random(3, 3, 7);
        assert_eq!(a, b);
        let c = Matrix::random(3, 3, 8);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn vec_mul_identity() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut out = [0.0; 2];
        m.vec_mul(&[3.0, 4.0], &mut out);
        assert_eq!(out, [3.0, 4.0]);
    }

    #[test]
    fn vec_mul_general() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let mut out = [0.0; 3];
        m.vec_mul(&[1.0, 1.0], &mut out);
        assert_eq!(out, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn axpy_add_scale_dot() {
        let mut v = vec![1.0, 2.0];
        vec_add(&mut v, &[1.0, 1.0]);
        assert_eq!(v, [2.0, 3.0]);
        vec_axpy(&mut v, 2.0, &[1.0, 0.0]);
        assert_eq!(v, [4.0, 3.0]);
        vec_scale(&mut v, 0.5);
        assert_eq!(v, [2.0, 1.5]);
        assert_eq!(vec_dot(&v, &[2.0, 2.0]), 7.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut s = vec![1.0, 2.0, 3.0];
        softmax(&mut s);
        let sum: f32 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut s = vec![1000.0, 1000.0];
        softmax(&mut s);
        assert!((s[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut s: Vec<f32> = vec![];
        softmax(&mut s);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn vec_add_rejects_mismatch() {
        let mut v = vec![1.0];
        vec_add(&mut v, &[1.0, 2.0]);
    }
}

//! Heterogeneous graph neural network models and execution engines.
//!
//! This crate implements the three HGNNs the paper evaluates (MAGNN,
//! HAN, SHGNN) as functional forward passes over a
//! [`hetgraph::HeteroGraph`], with two interchangeable execution
//! engines:
//!
//! * [`engine::MaterializedEngine`] — the conventional pipeline that
//!   materializes every metapath instance as a pre-processing phase and
//!   aggregates each instance independently (the baseline whose memory
//!   footprint and redundant computation the paper measures);
//! * [`engine::OnTheFlyEngine`] — the paper's software approach
//!   ("SoftwareOnly" in Figure 14): instances are generated on the fly
//!   by cartesian-like products and shared-prefix aggregates are
//!   computed once and reused.
//!
//! Both engines compute *identical embeddings* (property-tested) while
//! counting flops and bytes per phase into a
//! [`profile::WorkloadProfile`], the currency every performance model
//! in the workspace consumes.
//!
//! # Example
//!
//! ```
//! use hetgraph::datasets::{generate, DatasetId, GeneratorConfig};
//! use hgnn::engine::{InferenceEngine, MaterializedEngine, OnTheFlyEngine};
//! use hgnn::{FeatureStore, ModelConfig, ModelKind};
//!
//! let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.02));
//! let features = FeatureStore::random(&ds.graph, 7);
//! let config = ModelConfig::new(ModelKind::Magnn).with_hidden_dim(16);
//!
//! let baseline = MaterializedEngine.run(&ds.graph, &features, &config, &ds.metapaths)?;
//! let on_the_fly = OnTheFlyEngine.run(&ds.graph, &features, &config, &ds.metapaths)?;
//!
//! // Same embeddings, strictly less aggregation work.
//! assert!(on_the_fly.profile.performed_aggregations
//!     <= baseline.profile.performed_aggregations);
//! # Ok::<(), hgnn::HgnnError>(())
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the SIMD kernels module needs a scoped
// `allow` for `std::arch` intrinsics; everything else stays safe.
#![deny(unsafe_code)]

pub mod engine;
mod error;
mod features;
mod model;
pub mod profile;
pub mod tensor;

pub use error::HgnnError;
pub use features::{FeatureStore, HiddenFeatures, Projection};
pub use model::{semantic_weights, ModelConfig, ModelKind};
pub use profile::{OpCounters, Phase, PhaseBreakdown, WorkloadProfile};

//! Differential tests for the SIMD kernel backends.
//!
//! The AVX2 and scalar backends promise *bit-identical* results. This
//! suite sweeps seeded shapes — empty, non-multiple-of-8, and inputs
//! with all-zero rows (which exercise the GEMV `xi == 0` skip) — and
//! asserts the two backends agree bit for bit on every kernel, that
//! cache-blocking geometry never changes a projection result, and that
//! the projection op counters are identical on both paths.

use std::collections::BTreeMap;

use hetgraph::datasets::{generate, DatasetId, GeneratorConfig};
use hgnn::tensor::kernels::{
    self, avx2_available, force_backend, project_batch, Backend, TileGeometry,
};
use hgnn::tensor::Matrix;
use hgnn::{FeatureStore, OpCounters, Projection};

/// Serializes tests that flip the process-wide backend override.
fn backend_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// splitmix64-driven values in [-1, 1), deterministic per seed. Every
/// fourth value is forced to exactly 0.0 so zero-skip paths run even on
/// random data.
fn seeded(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|i| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            if i % 4 == 3 {
                0.0
            } else {
                (z >> 40) as f32 / (1u64 << 23) as f32 - 1.0
            }
        })
        .collect()
}

fn with_backend<T>(backend: Backend, f: impl FnOnce() -> T) -> T {
    force_backend(Some(backend));
    let out = f();
    force_backend(None);
    out
}

#[test]
fn elementwise_kernels_agree_across_shape_sweep() {
    let _guard = backend_lock();
    if !avx2_available() {
        eprintln!("skipping: host has no AVX2");
        return;
    }
    for len in [
        0usize, 1, 2, 5, 7, 8, 9, 12, 15, 16, 17, 31, 33, 63, 65, 100, 127, 128, 129, 257,
    ] {
        for seed in 0..4u64 {
            let a = seeded(len, seed.wrapping_mul(31) + len as u64);
            let b = seeded(len, seed.wrapping_mul(67) + 9000 + len as u64);
            let zeros = vec![0.0f32; len];
            for (x, y) in [(&a, &b), (&a, &zeros), (&zeros, &b), (&zeros, &zeros)] {
                let (ds, dv) = (
                    with_backend(Backend::Scalar, || kernels::dot(x, y)),
                    with_backend(Backend::Avx2, || kernels::dot(x, y)),
                );
                assert_eq!(ds.to_bits(), dv.to_bits(), "dot len={len} seed={seed}");

                let run = |be: Backend| {
                    with_backend(be, || {
                        let mut add_out = x.clone();
                        kernels::add(&mut add_out, y);
                        let mut axpy_out = x.clone();
                        kernels::axpy(&mut axpy_out, 0.73, y);
                        let mut scale_out = x.clone();
                        kernels::scale(&mut scale_out, -2.5);
                        (add_out, axpy_out, scale_out)
                    })
                };
                let s = run(Backend::Scalar);
                let v = run(Backend::Avx2);
                assert_eq!(s, v, "elementwise len={len} seed={seed}");
            }
        }
    }
}

#[test]
fn gemv_and_project_batch_agree_across_shape_sweep() {
    let _guard = backend_lock();
    if !avx2_available() {
        eprintln!("skipping: host has no AVX2");
        return;
    }
    // (rows n, raw dim k, hidden dim m): empty batches, dims off the
    // 8-lane grid, and shapes wide enough to hit the 32-wide panel.
    for (n, k, m) in [
        (0usize, 5usize, 7usize),
        (1, 1, 1),
        (3, 7, 9),
        (4, 8, 8),
        (5, 12, 33),
        (7, 16, 40),
        (9, 31, 65),
        (16, 64, 64),
    ] {
        let x = {
            let mut x = seeded(n * k, (n * 1000 + k) as u64);
            // Zero out entire rows so whole-row skips differ from the
            // per-element zeros `seeded` already injects.
            for r in (0..n).step_by(3) {
                x[r * k..(r + 1) * k].fill(0.0);
            }
            x
        };
        let w = seeded(k * m, (k * 1000 + m) as u64);
        for tiles in [
            TileGeometry::default(),
            TileGeometry {
                row_block: 1,
                col_block: 8,
            },
            TileGeometry {
                row_block: 2,
                col_block: 16,
            },
        ] {
            let run = |be: Backend| {
                with_backend(be, || {
                    let mut out = vec![0.0f32; n * m];
                    project_batch(&x, n, k, &w, m, &mut out, tiles);
                    out
                })
            };
            let s = run(Backend::Scalar);
            let v = run(Backend::Avx2);
            assert_eq!(
                s.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                v.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "project_batch n={n} k={k} m={m} tiles={tiles:?}"
            );
        }
        if n > 0 {
            let run = |be: Backend| {
                with_backend(be, || {
                    let mut out = vec![0.0f32; m];
                    kernels::gemv(&w, m, &x[..k], &mut out);
                    out
                })
            };
            assert_eq!(run(Backend::Scalar), run(Backend::Avx2), "gemv k={k} m={m}");
        }
    }
}

#[test]
fn projection_op_counts_and_outputs_are_invariant() {
    let _guard = backend_lock();
    let dataset = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.02));
    let graph = &dataset.graph;
    let fs = FeatureStore::random(graph, 11);
    let proj = Projection::random(graph, 16, 13);

    // Reference: scalar backend, default (row-at-a-time-equivalent)
    // geometry.
    let (ref_counters, ref_hidden) = with_backend(Backend::Scalar, || {
        let mut c = OpCounters::default();
        let h = proj.project(graph, &fs, &mut c).unwrap();
        (c, h)
    });

    let geometries = [
        TileGeometry::default(),
        TileGeometry {
            row_block: 1,
            col_block: 8,
        },
        TileGeometry {
            row_block: 4,
            col_block: 16,
        },
        TileGeometry::for_cache(256 * 1024, 64, 16),
    ];
    let mut backends = vec![Backend::Scalar];
    if avx2_available() {
        backends.push(Backend::Avx2);
    }
    for be in backends {
        for tiles in geometries {
            let (c, h) = with_backend(be, || {
                let mut c = OpCounters::default();
                let h = proj.project_with_tiles(graph, &fs, &mut c, tiles).unwrap();
                (c, h)
            });
            // The cost model is shape-derived: blocked/vectorized
            // execution must report exactly the scalar path's counts.
            assert_eq!(c.flops, ref_counters.flops, "{be:?} {tiles:?}");
            assert_eq!(c.bytes_read, ref_counters.bytes_read, "{be:?} {tiles:?}");
            assert_eq!(
                c.bytes_written, ref_counters.bytes_written,
                "{be:?} {tiles:?}"
            );
            for (ty, _) in graph.schema().vertex_types() {
                let got: &Matrix = h.matrix(ty).unwrap();
                let want: &Matrix = ref_hidden.matrix(ty).unwrap();
                assert_eq!(got.max_abs_diff(want), 0.0, "{be:?} {tiles:?}");
            }
        }
    }

    // Sanity: the projection actually counted work.
    let per_type: BTreeMap<_, _> = graph.schema().vertex_types().collect();
    assert!(!per_type.is_empty());
    assert!(ref_counters.flops > 0);
}

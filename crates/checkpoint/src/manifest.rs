//! Sweep run manifest: a JSONL journal of completed cells.
//!
//! Line 1 is a [`JournalHeader`] (format version, sweep config hash,
//! seed); every subsequent line is one [`CellRecord`] appended — and
//! fsynced — the moment its cell completes. A crash can therefore tear
//! at most the final line, which [`Journal::open_resume`] tolerates by
//! discarding an unparseable trailing fragment; torn or malformed lines
//! anywhere else are structural corruption and are rejected.
//!
//! On resume, a runner replays `result_json` for every journaled cell
//! instead of re-simulating it. Because cells are deterministic, the
//! replayed bytes match what a rerun would produce, keeping the final
//! results file byte-identical to an uninterrupted sweep.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::error::CheckpointError;
use crate::format::FORMAT_VERSION;
use crate::hash::digest_str;

/// First line of a journal: identifies the sweep the records belong to.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Container format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Hash of the whole sweep configuration (grid + seed + scale).
    pub config_hash: u64,
    /// Seed the sweep runs under.
    pub seed: u64,
}

/// One completed sweep cell.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Unique cell key within the sweep (e.g. `"ecc/bitflip=1e-3"`).
    pub key: String,
    /// Hash of this cell's own configuration.
    pub config_hash: u64,
    /// FNV-1a digest of `result_json` (integrity of the replay data).
    pub result_digest: u64,
    /// The cell's result, as the JSON the sweep would emit for it.
    pub result_json: String,
}

/// Append-only journal handle.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Starts a fresh journal at `path`, truncating any previous one.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, CheckpointError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| CheckpointError::io(dir, "create dir", &e))?;
            }
        }
        let mut file = File::create(path).map_err(|e| CheckpointError::io(path, "create", &e))?;
        let line = render_line(path, header)?;
        file.write_all(line.as_bytes())
            .map_err(|e| CheckpointError::io(path, "write", &e))?;
        file.sync_data()
            .map_err(|e| CheckpointError::io(path, "fsync", &e))?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Reopens an existing journal for resumption.
    ///
    /// Validates the header against `expected` (version, config hash,
    /// seed) and returns the completed cell records. A trailing line
    /// that fails to parse is treated as a torn in-flight append and
    /// dropped; a malformed line followed by further lines is corruption
    /// and rejected.
    pub fn open_resume(
        path: &Path,
        expected: &JournalHeader,
    ) -> Result<(Self, Vec<CellRecord>), CheckpointError> {
        let p = || path.display().to_string();
        let text = fs::read_to_string(path).map_err(|e| CheckpointError::io(path, "read", &e))?;
        let mut lines: Vec<&str> = text.split('\n').collect();
        // `split` yields a final empty segment when the file ends in a
        // newline; an unterminated non-empty final segment is either a
        // fully written but unsynced record (kept if it parses) or a
        // torn append (dropped by the parse loop below).
        if lines.last() == Some(&"") {
            lines.pop();
        }
        let Some(first) = lines.first() else {
            return Err(CheckpointError::Malformed {
                path: p(),
                detail: "journal is empty (no header line)".into(),
            });
        };
        let header: JournalHeader =
            serde_json::from_str(first).map_err(|e| CheckpointError::Malformed {
                path: p(),
                detail: format!("header line failed to parse: {e}"),
            })?;
        if header.version > FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                path: p(),
                found: header.version,
                supported: FORMAT_VERSION,
            });
        }
        if header.config_hash != expected.config_hash {
            return Err(CheckpointError::ConfigMismatch {
                path: p(),
                expected: expected.config_hash,
                found: header.config_hash,
            });
        }
        if header.seed != expected.seed {
            return Err(CheckpointError::Malformed {
                path: p(),
                detail: format!(
                    "journal was recorded with seed {}, resume requested seed {}",
                    header.seed, expected.seed
                ),
            });
        }
        let mut cells = Vec::new();
        let body = &lines[1..];
        for (i, line) in body.iter().enumerate() {
            match serde_json::from_str::<CellRecord>(line) {
                Ok(rec) => {
                    if digest_str(&rec.result_json) != rec.result_digest {
                        return Err(CheckpointError::Malformed {
                            path: p(),
                            detail: format!(
                                "cell {:?}: stored result does not match its digest",
                                rec.key
                            ),
                        });
                    }
                    cells.push(rec);
                }
                Err(e) if i + 1 == body.len() => {
                    // Torn trailing append from a crash mid-write: the
                    // cell will simply be re-run. Truncate it away so
                    // new appends start on a clean boundary.
                    let _ = e;
                    break;
                }
                Err(e) => {
                    return Err(CheckpointError::Malformed {
                        path: p(),
                        detail: format!("journal line {} failed to parse: {e}", i + 2),
                    });
                }
            }
        }
        // Rewrite the journal with only the intact records so the next
        // append lands after valid data (atomic via the shared helper).
        let mut clean = render_line(path, &header)?;
        for rec in &cells {
            clean.push_str(&render_line(path, rec)?);
        }
        crate::atomic::atomic_write_str(path, &clean)?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| CheckpointError::io(path, "open append", &e))?;
        Ok((
            Self {
                path: path.to_path_buf(),
                file,
            },
            cells,
        ))
    }

    /// Appends one completed cell and fsyncs the journal.
    pub fn append(&mut self, record: &CellRecord) -> Result<(), CheckpointError> {
        let line = render_line(&self.path, record)?;
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| CheckpointError::io(&self.path, "append", &e))?;
        self.file
            .sync_data()
            .map_err(|e| CheckpointError::io(&self.path, "fsync", &e))?;
        Ok(())
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Builds a [`CellRecord`], computing the result digest.
pub fn cell_record(key: &str, config_hash: u64, result_json: String) -> CellRecord {
    CellRecord {
        key: key.to_string(),
        config_hash,
        result_digest: digest_str(&result_json),
        result_json,
    }
}

fn render_line<T: Serialize>(path: &Path, value: &T) -> Result<String, CheckpointError> {
    let mut line = serde_json::to_string(value).map_err(|e| CheckpointError::Malformed {
        path: path.display().to_string(),
        detail: format!("record failed to serialize: {e}"),
    })?;
    line.push('\n');
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metanmp-manifest-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn header() -> JournalHeader {
        JournalHeader {
            version: FORMAT_VERSION,
            config_hash: 0xFEED,
            seed: 42,
        }
    }

    #[test]
    fn journal_round_trip() {
        let dir = scratch("roundtrip");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append(&cell_record("a", 1, "{\"x\":1}".into())).unwrap();
        j.append(&cell_record("b", 2, "{\"x\":2}".into())).unwrap();
        drop(j);
        let (_j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].key, "a");
        assert_eq!(cells[1].result_json, "{\"x\":2}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tolerates_torn_trailing_line() {
        let dir = scratch("torn");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append(&cell_record("a", 1, "{}".into())).unwrap();
        drop(j);
        // Simulate a crash mid-append: half a record, no newline.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"key\":\"b\",\"config_ha");
        fs::write(&path, &bytes).unwrap();
        let (mut j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 1);
        // And appends continue on a clean line boundary.
        j.append(&cell_record("b", 2, "{}".into())).unwrap();
        drop(j);
        let (_j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_wrong_sweep() {
        let dir = scratch("wrong");
        let path = dir.join("sweep.manifest.jsonl");
        let j = Journal::create(&path, &header()).unwrap();
        drop(j);
        let other = JournalHeader {
            config_hash: 0xBEEF,
            ..header()
        };
        let err = Journal::open_resume(&path, &other).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ConfigMismatch { .. }),
            "{err}"
        );
        let seed_change = JournalHeader {
            seed: 7,
            ..header()
        };
        let err = Journal::open_resume(&path, &seed_change).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_tampered_result() {
        let dir = scratch("tamper");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append(&cell_record("a", 1, "{\"cycles\":100}".into()))
            .unwrap();
        j.append(&cell_record("b", 2, "{\"cycles\":200}".into()))
            .unwrap();
        drop(j);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("100", "999")).unwrap();
        let err = Journal::open_resume(&path, &header()).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Sweep run manifest: a JSONL journal of completed cells, leases, and
//! failed attempts.
//!
//! Line 1 is a [`JournalHeader`] (format version, sweep config hash,
//! seed); every subsequent line is appended — and fsynced — the moment
//! its event happens. A crash can therefore tear at most the final
//! line, which [`Journal::open_resume`] tolerates by discarding an
//! unparseable trailing fragment; torn or malformed lines anywhere
//! else are structural corruption and are rejected.
//!
//! Three record kinds share the body (see [`JournalRecord`]):
//!
//! * a **completion** is a bare [`CellRecord`] — the historical format,
//!   so journals written before leases existed still resume;
//! * a **lease** ([`LeaseRecord`], serialized `{"Lease":{...}}`) marks
//!   a cell handed to a worker; purely informational on replay;
//! * a **failed attempt** ([`FailRecord`], `{"Failed":{...}}`) records
//!   a worker death or cell timeout; the cell simply runs again.
//!
//! The journal is the single source of truth for work migration:
//! completions are **idempotent** — a cell completed twice (a worker
//! declared dead past its heartbeat deadline that was merely stalled,
//! racing its replacement) keeps the first record, and a duplicate
//! whose result differs from the first is corruption and rejected.
//!
//! Leases and completions optionally carry a **fence generation**: a
//! monotonic counter the coordinator bumps every time it hands out a
//! lease. A completion whose generation is older than the newest lease
//! generation already journaled for the same key is a *zombie write* —
//! a partitioned worker's output landing after its lease migrated — and
//! is silently discarded on replay instead of being treated as a
//! conflicting duplicate. Records without a generation (the historical
//! format, and in-process sweeps) keep the plain first-wins semantics.
//!
//! On resume, a runner replays `result_json` for every completed cell
//! instead of re-simulating it. Because cells are deterministic, the
//! replayed bytes match what a rerun would produce, keeping the final
//! results file byte-identical to an uninterrupted sweep.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::error::CheckpointError;
use crate::format::FORMAT_VERSION;
use crate::hash::digest_str;

/// First line of a journal: identifies the sweep the records belong to.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Container format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Hash of the whole sweep configuration (grid + seed + scale).
    pub config_hash: u64,
    /// Seed the sweep runs under.
    pub seed: u64,
}

/// One completed sweep cell.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Unique cell key within the sweep (e.g. `"ecc/bitflip=1e-3"`).
    pub key: String,
    /// Hash of this cell's own configuration.
    pub config_hash: u64,
    /// FNV-1a digest of `result_json` (integrity of the replay data).
    pub result_digest: u64,
    /// The cell's result, as the JSON the sweep would emit for it.
    pub result_json: String,
    /// Fence generation of the lease this completion was produced
    /// under; `None` (or 0) for in-process sweeps and journals written
    /// before fencing existed. A completion older than the newest
    /// journaled lease generation for its key is discarded on replay.
    pub gen: Option<u64>,
}

/// A cell leased to a worker for execution (crash-migration metadata).
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct LeaseRecord {
    /// Cell key the lease covers.
    pub key: String,
    /// Worker identity holding the lease (e.g. `"w-3"`).
    pub worker: String,
    /// 0-based attempt number; re-leases after a death increment it.
    pub attempt: u32,
    /// Fence generation of this lease (monotonic per coordinator);
    /// `None` for journals written before fencing existed.
    pub gen: Option<u64>,
}

/// A failed execution attempt (worker death, heartbeat expiry, or cell
/// timeout). The cell remains runnable; this line exists for post-
/// mortems and retry-budget accounting.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct FailRecord {
    /// Cell key the attempt was for.
    pub key: String,
    /// Attempt number that failed.
    pub attempt: u32,
    /// Structured human-readable reason.
    pub error: String,
}

/// One journal body line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// Completed cell (serialized as a bare [`CellRecord`] line).
    Cell(CellRecord),
    /// Cell leased to a worker.
    Lease(LeaseRecord),
    /// Failed execution attempt.
    Failed(FailRecord),
}

/// Serde image of the *tagged* record kinds. Completions stay bare
/// [`CellRecord`] lines for compatibility, so only leases and failures
/// go through the enum tagging (`{"Lease":{...}}` / `{"Failed":{...}}`).
#[derive(Serialize, Deserialize, Debug, Clone)]
enum TaggedRecord {
    Lease(LeaseRecord),
    Failed(FailRecord),
}

/// Parses one journal body line: a bare completion first, then the
/// tagged kinds.
fn parse_record(line: &str) -> Result<JournalRecord, String> {
    // A completion has `result_digest`/`result_json` fields no tagged
    // record carries, and a tagged record is a single-key map whose key
    // is a variant name — the shapes are disjoint, so trying in order
    // is unambiguous.
    if let Ok(rec) = serde_json::from_str::<CellRecord>(line) {
        return Ok(JournalRecord::Cell(rec));
    }
    match serde_json::from_str::<TaggedRecord>(line) {
        Ok(TaggedRecord::Lease(l)) => Ok(JournalRecord::Lease(l)),
        Ok(TaggedRecord::Failed(f)) => Ok(JournalRecord::Failed(f)),
        Err(e) => Err(e.to_string()),
    }
}

/// Append-only journal handle.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Starts a fresh journal at `path`, truncating any previous one.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, CheckpointError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| CheckpointError::io(dir, "create dir", &e))?;
            }
        }
        let mut file = File::create(path).map_err(|e| CheckpointError::io(path, "create", &e))?;
        let line = render_line(path, header)?;
        file.write_all(line.as_bytes())
            .map_err(|e| CheckpointError::io(path, "write", &e))?;
        file.sync_data()
            .map_err(|e| CheckpointError::io(path, "fsync", &e))?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Reopens an existing journal for resumption.
    ///
    /// Validates the header against `expected` (version, config hash,
    /// seed) and returns the completed cell records, deduplicated
    /// idempotently (first completion of a key wins; a duplicate with a
    /// different result is corruption). Lease and failed-attempt
    /// records are dropped — they describe a previous incarnation's
    /// in-flight state, and their cells simply run again. A trailing
    /// line that fails to parse is treated as a torn in-flight append
    /// and dropped; a malformed line followed by further lines is
    /// corruption and rejected.
    pub fn open_resume(
        path: &Path,
        expected: &JournalHeader,
    ) -> Result<(Self, Vec<CellRecord>), CheckpointError> {
        let (journal, records) = Self::open_resume_records(path, expected)?;
        let cells = records
            .into_iter()
            .filter_map(|r| match r {
                JournalRecord::Cell(c) => Some(c),
                JournalRecord::Lease(_) | JournalRecord::Failed(_) => None,
            })
            .collect();
        Ok((journal, cells))
    }

    /// Like [`Journal::open_resume`], but returns every intact record —
    /// completions (deduplicated), leases, and failed attempts — in
    /// journal order, for coordinators that rebuild supervision state.
    ///
    /// The on-disk journal is compacted to the header plus the
    /// deduplicated completions, so the next append lands after valid
    /// data and stale leases do not accumulate across restarts.
    pub fn open_resume_records(
        path: &Path,
        expected: &JournalHeader,
    ) -> Result<(Self, Vec<JournalRecord>), CheckpointError> {
        let p = || path.display().to_string();
        let text = fs::read_to_string(path).map_err(|e| CheckpointError::io(path, "read", &e))?;
        let mut lines: Vec<&str> = text.split('\n').collect();
        // `split` yields a final empty segment when the file ends in a
        // newline; an unterminated non-empty final segment is either a
        // fully written but unsynced record (kept if it parses) or a
        // torn append (dropped by the parse loop below).
        if lines.last() == Some(&"") {
            lines.pop();
        }
        let Some(first) = lines.first() else {
            return Err(CheckpointError::Malformed {
                path: p(),
                detail: "journal is empty (no header line)".into(),
            });
        };
        let header: JournalHeader =
            serde_json::from_str(first).map_err(|e| CheckpointError::Malformed {
                path: p(),
                detail: format!("header line failed to parse: {e}"),
            })?;
        if header.version > FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                path: p(),
                found: header.version,
                supported: FORMAT_VERSION,
            });
        }
        if header.config_hash != expected.config_hash {
            return Err(CheckpointError::ConfigMismatch {
                path: p(),
                expected: expected.config_hash,
                found: header.config_hash,
            });
        }
        if header.seed != expected.seed {
            return Err(CheckpointError::Malformed {
                path: p(),
                detail: format!(
                    "journal was recorded with seed {}, resume requested seed {}",
                    header.seed, expected.seed
                ),
            });
        }
        let mut records: Vec<JournalRecord> = Vec::new();
        let mut first_completion: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        // Newest fence generation journaled per key *so far* (journal
        // order): a completion is judged against the leases that
        // preceded it, so a legitimate completion followed by a later
        // re-lease is kept while a zombie landing after the re-lease
        // is fenced.
        let mut newest_lease_gen: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        let body = &lines[1..];
        for (i, line) in body.iter().enumerate() {
            match parse_record(line) {
                Ok(JournalRecord::Cell(rec)) => {
                    if digest_str(&rec.result_json) != rec.result_digest {
                        return Err(CheckpointError::Malformed {
                            path: p(),
                            detail: format!(
                                "cell {:?}: stored result does not match its digest",
                                rec.key
                            ),
                        });
                    }
                    // Zombie write: produced under a lease generation
                    // older than one already journaled for this key.
                    // Discarded before the duplicate check — its bytes
                    // may legitimately differ from the surviving
                    // attempt's, and that is not corruption.
                    let fenced = match rec.gen {
                        Some(g) if g != 0 => newest_lease_gen
                            .get(&rec.key)
                            .is_some_and(|&newest| g < newest),
                        _ => false,
                    };
                    if fenced {
                        continue;
                    }
                    match first_completion.get(&rec.key) {
                        // Idempotent duplicate (a stalled worker racing
                        // its replacement): first record wins.
                        Some(digest) if *digest == rec.result_digest => {}
                        Some(_) => {
                            return Err(CheckpointError::Malformed {
                                path: p(),
                                detail: format!(
                                    "cell {:?}: completed twice with different results — \
                                     the sweep is not deterministic or the journal is corrupt",
                                    rec.key
                                ),
                            });
                        }
                        None => {
                            first_completion.insert(rec.key.clone(), rec.result_digest);
                            records.push(JournalRecord::Cell(rec));
                        }
                    }
                }
                Ok(rec) => {
                    if let JournalRecord::Lease(lease) = &rec {
                        if let Some(g) = lease.gen {
                            if g != 0 {
                                let newest = newest_lease_gen.entry(lease.key.clone()).or_insert(0);
                                *newest = (*newest).max(g);
                            }
                        }
                    }
                    records.push(rec);
                }
                Err(e) if i + 1 == body.len() => {
                    // Torn trailing append from a crash mid-write: the
                    // event will simply recur. Truncate it away so new
                    // appends start on a clean boundary.
                    let _ = e;
                    break;
                }
                Err(e) => {
                    return Err(CheckpointError::Malformed {
                        path: p(),
                        detail: format!("journal line {} failed to parse: {e}", i + 2),
                    });
                }
            }
        }
        // Rewrite the journal with only the intact completions so the
        // next append lands after valid data (atomic via the shared
        // helper); stale leases and spent failure lines are dropped.
        let mut clean = render_line(path, &header)?;
        for rec in &records {
            if let JournalRecord::Cell(cell) = rec {
                clean.push_str(&render_line(path, cell)?);
            }
        }
        crate::atomic::atomic_write_str(path, &clean)?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| CheckpointError::io(path, "open append", &e))?;
        Ok((
            Self {
                path: path.to_path_buf(),
                file,
            },
            records,
        ))
    }

    /// Appends one completed cell and fsyncs the journal.
    pub fn append(&mut self, record: &CellRecord) -> Result<(), CheckpointError> {
        let line = render_line(&self.path, record)?;
        self.append_line(&line)
    }

    /// Appends a lease record and fsyncs the journal.
    pub fn append_lease(&mut self, lease: &LeaseRecord) -> Result<(), CheckpointError> {
        let line = render_line(&self.path, &TaggedRecord::Lease(lease.clone()))?;
        self.append_line(&line)
    }

    /// Appends a failed-attempt record and fsyncs the journal.
    pub fn append_failed(&mut self, fail: &FailRecord) -> Result<(), CheckpointError> {
        let line = render_line(&self.path, &TaggedRecord::Failed(fail.clone()))?;
        self.append_line(&line)
    }

    fn append_line(&mut self, line: &str) -> Result<(), CheckpointError> {
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| CheckpointError::io(&self.path, "append", &e))?;
        self.file
            .sync_data()
            .map_err(|e| CheckpointError::io(&self.path, "fsync", &e))?;
        Ok(())
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Builds an unfenced [`CellRecord`], computing the result digest.
pub fn cell_record(key: &str, config_hash: u64, result_json: String) -> CellRecord {
    CellRecord {
        key: key.to_string(),
        config_hash,
        result_digest: digest_str(&result_json),
        result_json,
        gen: None,
    }
}

/// Builds a [`CellRecord`] carrying the fence generation of the lease
/// it was produced under (coordinator-journaled completions).
pub fn cell_record_fenced(
    key: &str,
    config_hash: u64,
    result_json: String,
    gen: u64,
) -> CellRecord {
    CellRecord {
        gen: Some(gen),
        ..cell_record(key, config_hash, result_json)
    }
}

fn render_line<T: Serialize>(path: &Path, value: &T) -> Result<String, CheckpointError> {
    let mut line = serde_json::to_string(value).map_err(|e| CheckpointError::Malformed {
        path: path.display().to_string(),
        detail: format!("record failed to serialize: {e}"),
    })?;
    line.push('\n');
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metanmp-manifest-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn header() -> JournalHeader {
        JournalHeader {
            version: FORMAT_VERSION,
            config_hash: 0xFEED,
            seed: 42,
        }
    }

    #[test]
    fn journal_round_trip() {
        let dir = scratch("roundtrip");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append(&cell_record("a", 1, "{\"x\":1}".into())).unwrap();
        j.append(&cell_record("b", 2, "{\"x\":2}".into())).unwrap();
        drop(j);
        let (_j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].key, "a");
        assert_eq!(cells[1].result_json, "{\"x\":2}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tolerates_torn_trailing_line() {
        let dir = scratch("torn");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append(&cell_record("a", 1, "{}".into())).unwrap();
        drop(j);
        // Simulate a crash mid-append: half a record, no newline.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"key\":\"b\",\"config_ha");
        fs::write(&path, &bytes).unwrap();
        let (mut j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 1);
        // And appends continue on a clean line boundary.
        j.append(&cell_record("b", 2, "{}".into())).unwrap();
        drop(j);
        let (_j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_wrong_sweep() {
        let dir = scratch("wrong");
        let path = dir.join("sweep.manifest.jsonl");
        let j = Journal::create(&path, &header()).unwrap();
        drop(j);
        let other = JournalHeader {
            config_hash: 0xBEEF,
            ..header()
        };
        let err = Journal::open_resume(&path, &other).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ConfigMismatch { .. }),
            "{err}"
        );
        let seed_change = JournalHeader {
            seed: 7,
            ..header()
        };
        let err = Journal::open_resume(&path, &seed_change).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leases_and_failures_round_trip_and_compact_away() {
        let dir = scratch("lease");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append_lease(&LeaseRecord {
            key: "a".into(),
            worker: "w-0".into(),
            attempt: 0,
            gen: None,
        })
        .unwrap();
        j.append_failed(&FailRecord {
            key: "a".into(),
            attempt: 0,
            error: "worker w-0 heartbeat deadline exceeded".into(),
        })
        .unwrap();
        j.append_lease(&LeaseRecord {
            key: "a".into(),
            worker: "w-1".into(),
            attempt: 1,
            gen: None,
        })
        .unwrap();
        j.append(&cell_record("a", 1, "{\"x\":1}".into())).unwrap();
        drop(j);
        let (_j, records) = Journal::open_resume_records(&path, &header()).unwrap();
        assert_eq!(records.len(), 4);
        assert!(matches!(&records[0], JournalRecord::Lease(l) if l.worker == "w-0"));
        assert!(matches!(&records[1], JournalRecord::Failed(f) if f.attempt == 0));
        assert!(matches!(&records[2], JournalRecord::Lease(l) if l.attempt == 1));
        assert!(matches!(&records[3], JournalRecord::Cell(c) if c.key == "a"));
        // Completions-only view sees the one completion.
        let (_j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 1);
        // And the compaction dropped the stale lease/failure lines.
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_completion_is_idempotent() {
        let dir = scratch("dup");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        // A worker declared dead past its heartbeat deadline completes
        // anyway, racing the re-leased attempt: same key, same bytes.
        j.append(&cell_record("a", 1, "{\"x\":1}".into())).unwrap();
        j.append(&cell_record("b", 2, "{\"x\":2}".into())).unwrap();
        j.append(&cell_record("a", 1, "{\"x\":1}".into())).unwrap();
        drop(j);
        let (_j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].key, "a");
        assert_eq!(cells[1].key, "b");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn conflicting_duplicate_completion_is_corruption() {
        let dir = scratch("dup-conflict");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append(&cell_record("a", 1, "{\"x\":1}".into())).unwrap();
        j.append(&cell_record("a", 1, "{\"x\":9}".into())).unwrap();
        drop(j);
        let err = Journal::open_resume(&path, &header()).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lease_tail_is_dropped() {
        let dir = scratch("torn-lease");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append(&cell_record("a", 1, "{}".into())).unwrap();
        drop(j);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"Lease\":{\"key\":\"b\",\"wor");
        fs::write(&path, &bytes).unwrap();
        let (mut j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 1);
        j.append_lease(&LeaseRecord {
            key: "b".into(),
            worker: "w-2".into(),
            attempt: 0,
            gen: None,
        })
        .unwrap();
        drop(j);
        let (_j, records) = Journal::open_resume_records(&path, &header()).unwrap();
        assert_eq!(records.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    fn lease(key: &str, worker: &str, attempt: u32, gen: u64) -> LeaseRecord {
        LeaseRecord {
            key: key.into(),
            worker: worker.into(),
            attempt,
            gen: Some(gen),
        }
    }

    #[test]
    fn fenced_zombie_write_is_discarded_even_with_different_bytes() {
        let dir = scratch("fence");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        // Lease gen 3 to w-0, declare it dead, re-lease gen 7 to w-1.
        j.append_lease(&lease("a", "w-0", 0, 3)).unwrap();
        j.append_failed(&FailRecord {
            key: "a".into(),
            attempt: 0,
            error: "w-0 heartbeat deadline exceeded".into(),
        })
        .unwrap();
        j.append_lease(&lease("a", "w-1", 1, 7)).unwrap();
        // w-1 completes under gen 7; then the partitioned w-0 reappears
        // and its stale completion lands — with *different* bytes (it
        // resumed from an older inflight checkpoint). Without fencing
        // this would be "completed twice with different results".
        j.append(&cell_record_fenced("a", 1, "{\"x\":1}".into(), 7))
            .unwrap();
        j.append(&cell_record_fenced("a", 1, "{\"x\":666}".into(), 3))
            .unwrap();
        drop(j);
        let (_j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].result_json, "{\"x\":1}", "gen-7 result survives");
        // Compaction drops the zombie line for good.
        let text = fs::read_to_string(&path).unwrap();
        assert!(!text.contains("666"), "zombie compacted away: {text}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zombie_landing_before_the_replacement_completes_is_also_fenced() {
        let dir = scratch("fence-early");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append_lease(&lease("a", "w-0", 0, 3)).unwrap();
        j.append_lease(&lease("a", "w-1", 1, 7)).unwrap();
        // The zombie lands first; the live attempt finishes after.
        j.append(&cell_record_fenced("a", 1, "{\"x\":666}".into(), 3))
            .unwrap();
        j.append(&cell_record_fenced("a", 1, "{\"x\":1}".into(), 7))
            .unwrap();
        drop(j);
        let (_j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].result_json, "{\"x\":1}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn completion_before_a_later_relent_lease_is_kept() {
        let dir = scratch("fence-order");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        // A completion is judged against the leases journaled *before*
        // it: a pointless re-lease afterwards must not retroactively
        // fence the legitimate result.
        j.append_lease(&lease("a", "w-0", 0, 3)).unwrap();
        j.append(&cell_record_fenced("a", 1, "{\"x\":1}".into(), 3))
            .unwrap();
        j.append_lease(&lease("a", "w-1", 1, 7)).unwrap();
        drop(j);
        let (_j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].result_json, "{\"x\":1}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fenced_duplicate_with_identical_bytes_is_idempotent() {
        let dir = scratch("fence-dup");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append_lease(&lease("a", "w-0", 0, 3)).unwrap();
        j.append_lease(&lease("a", "w-1", 1, 7)).unwrap();
        // Deterministic cells: the zombie's bytes match. Both orders of
        // (fenced, live) collapse to one record either way.
        j.append(&cell_record_fenced("a", 1, "{\"x\":1}".into(), 3))
            .unwrap();
        j.append(&cell_record_fenced("a", 1, "{\"x\":1}".into(), 7))
            .unwrap();
        j.append(&cell_record_fenced("a", 1, "{\"x\":1}".into(), 3))
            .unwrap();
        drop(j);
        let (_j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unfenced_records_keep_legacy_semantics_alongside_fenced_ones() {
        let dir = scratch("fence-legacy");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append_lease(&lease("a", "w-0", 0, 9)).unwrap();
        // Gen-0 / gen-less records are never fenced, whatever leases
        // exist: in-process sweeps journal without generations.
        j.append(&cell_record("a", 1, "{\"x\":1}".into())).unwrap();
        j.append(&cell_record_fenced("b", 2, "{\"x\":2}".into(), 0))
            .unwrap();
        drop(j);
        let (_j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_fenced_tail_is_dropped() {
        let dir = scratch("fence-torn");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append_lease(&lease("a", "w-0", 0, 3)).unwrap();
        j.append_lease(&lease("a", "w-1", 1, 7)).unwrap();
        j.append(&cell_record_fenced("a", 1, "{\"x\":1}".into(), 7))
            .unwrap();
        drop(j);
        // A zombie write torn mid-append by a crash: dropped as the
        // usual trailing fragment, not surfaced as corruption.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"key\":\"a\",\"config_hash\":1,\"result_di");
        fs::write(&path, &bytes).unwrap();
        let (_j, cells) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].result_json, "{\"x\":1}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn conflicting_same_generation_duplicates_are_still_corruption() {
        let dir = scratch("fence-conflict");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append_lease(&lease("a", "w-0", 0, 3)).unwrap();
        // Same generation, different bytes: fencing cannot explain it,
        // so the determinism guarantee is genuinely broken.
        j.append(&cell_record_fenced("a", 1, "{\"x\":1}".into(), 3))
            .unwrap();
        j.append(&cell_record_fenced("a", 1, "{\"x\":9}".into(), 3))
            .unwrap();
        drop(j);
        let err = Journal::open_resume(&path, &header()).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_tampered_result() {
        let dir = scratch("tamper");
        let path = dir.join("sweep.manifest.jsonl");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append(&cell_record("a", 1, "{\"cycles\":100}".into()))
            .unwrap();
        j.append(&cell_record("b", 2, "{\"cycles\":200}".into()))
            .unwrap();
        drop(j);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("100", "999")).unwrap();
        let err = Journal::open_resume(&path, &header()).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}

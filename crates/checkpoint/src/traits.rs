//! The [`Snapshot`] / [`Restore`] pair implemented by every stateful
//! simulation layer.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A layer whose progress can be captured as a serializable state value.
///
/// The state must be *complete*: restoring it into a freshly
/// constructed instance (same configuration) and running to the end
/// must produce output byte-identical to an uninterrupted run.
pub trait Snapshot {
    /// Serializable image of the layer's mutable state.
    type State: Serialize + Deserialize;

    /// Captures the current state.
    fn snapshot(&self) -> Self::State;
}

/// A layer that can adopt a previously captured state.
pub trait Restore: Snapshot {
    /// Overwrites this instance's state with `state`.
    ///
    /// Fails (without modifying observable behavior guarantees) when the
    /// state is inconsistent with this instance's configuration — e.g.
    /// a snapshot taken under a different channel count.
    fn restore(&mut self, state: &Self::State) -> Result<(), RestoreError>;
}

/// Why a state image could not be adopted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError(pub String);

impl RestoreError {
    /// Builds an error from any displayable reason.
    pub fn new(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "restore failed: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

//! Crash-safe file replacement.
//!
//! `fs::write` straight onto a results file can leave a torn, truncated
//! JSON behind if the process dies mid-write. [`atomic_write`] instead
//! writes a sibling temp file, fsyncs it, and renames it over the
//! target — on POSIX filesystems the rename is atomic, so readers (and
//! a resumed run) only ever observe the old complete file or the new
//! complete one.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::CheckpointError;

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Durably replaces `path` with `bytes` (temp file → fsync → rename).
///
/// The parent directory is created if missing. After the rename the
/// directory itself is fsynced on a best-effort basis so the new entry
/// survives power loss; a failure there is ignored because the data
/// file is already durable and the rename already visible.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir).map_err(|e| CheckpointError::io(dir, "create dir", &e))?;
        }
    }
    let tmp = tmp_path(path);
    let mut f = File::create(&tmp).map_err(|e| CheckpointError::io(&tmp, "create", &e))?;
    f.write_all(bytes)
        .map_err(|e| CheckpointError::io(&tmp, "write", &e))?;
    f.sync_all()
        .map_err(|e| CheckpointError::io(&tmp, "fsync", &e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| CheckpointError::io(path, "rename", &e))?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            // Best effort: some filesystems refuse O_RDONLY fsync on
            // directories; the rename is already atomic and visible.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

/// [`atomic_write`] for text content.
pub fn atomic_write_str(path: &Path, text: &str) -> Result<(), CheckpointError> {
    atomic_write(path, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metanmp-atomic-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch("replace");
        let path = dir.join("out.json");
        atomic_write(&path, b"{\"v\":1}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":1}");
        atomic_write(&path, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":2}");
        // No temp file left behind.
        assert!(!path.with_file_name("out.json.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn creates_missing_parent() {
        let dir = scratch("parents");
        let path = dir.join("a/b/out.md");
        atomic_write_str(&path, "table").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "table");
        let _ = fs::remove_dir_all(&dir);
    }
}

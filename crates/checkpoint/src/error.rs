//! Structured checkpoint errors.
//!
//! Every variant names the offending file and the reason, so a rejected
//! resume tells the operator exactly what to delete or rerun. The type
//! is `Clone + PartialEq + Eq` so higher-level error enums (e.g.
//! `metanmp::MetanmpError`) can embed it without losing their derives;
//! I/O errors are therefore carried as rendered strings.

use std::fmt;

/// Why a checkpoint could not be written or loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// An underlying filesystem operation failed.
    Io {
        /// File or directory the operation targeted.
        path: String,
        /// Operation that failed (`"create"`, `"read"`, `"rename"`, ...).
        op: &'static str,
        /// Rendered `std::io::Error`.
        err: String,
    },
    /// The file does not start with the checkpoint magic bytes.
    BadMagic {
        /// Offending file.
        path: String,
    },
    /// The file was written by an unknown (newer) format version.
    UnsupportedVersion {
        /// Offending file.
        path: String,
        /// Version found in the header.
        found: u32,
        /// Latest version this build understands.
        supported: u32,
    },
    /// The file is too short to hold the fixed-size header.
    Truncated {
        /// Offending file.
        path: String,
        /// Bytes the header promised.
        needed: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// A header length field claims more bytes than the input holds.
    ///
    /// Raised *before* any buffer sized by the untrusted field is
    /// allocated or sliced, so a header claiming a 16 EiB payload is
    /// rejected in constant time.
    LengthOverrun {
        /// Offending file.
        path: String,
        /// Header field at fault (e.g. `"payload_len"`).
        field: &'static str,
        /// Bytes the field claims.
        claimed: u64,
        /// Bytes actually available for it.
        available: u64,
    },
    /// The payload CRC does not match the header.
    ChecksumMismatch {
        /// Offending file.
        path: String,
        /// CRC-32 stored in the header.
        stored: u32,
        /// CRC-32 computed over the payload.
        computed: u32,
    },
    /// The snapshot was taken under a different configuration.
    ConfigMismatch {
        /// Offending file.
        path: String,
        /// Configuration hash the caller expected.
        expected: u64,
        /// Configuration hash stored in the file.
        found: u64,
    },
    /// The payload passed the CRC but failed to parse or restore.
    Malformed {
        /// Offending file.
        path: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, op, err } => {
                write!(f, "checkpoint {path}: {op} failed: {err}")
            }
            Self::BadMagic { path } => {
                write!(f, "checkpoint {path}: not a checkpoint file (bad magic)")
            }
            Self::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "checkpoint {path}: format version {found} is newer than supported ({supported})"
            ),
            Self::Truncated { path, needed, got } => write!(
                f,
                "checkpoint {path}: truncated ({got} bytes, header promises {needed})"
            ),
            Self::LengthOverrun {
                path,
                field,
                claimed,
                available,
            } => write!(
                f,
                "checkpoint {path}: header field {field} claims {claimed} bytes \
                 but only {available} remain (rejected before allocation)"
            ),
            Self::ChecksumMismatch {
                path,
                stored,
                computed,
            } => write!(
                f,
                "checkpoint {path}: payload checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            Self::ConfigMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {path}: taken under a different configuration (expected hash {expected:#018x}, file has {found:#018x})"
            ),
            Self::Malformed { path, detail } => {
                write!(f, "checkpoint {path}: malformed payload: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl CheckpointError {
    /// Builds an [`CheckpointError::Io`] from a `std::io::Error`.
    pub fn io(path: &std::path::Path, op: &'static str, err: &std::io::Error) -> Self {
        Self::Io {
            path: path.display().to_string(),
            op,
            err: err.to_string(),
        }
    }
}

//! Crash-safe checkpoint/resume support for the MetaNMP simulation stack.
//!
//! Long sweeps (the paper's Figs. 9–15 matrix) are expensive to rerun
//! from scratch after a crash or SIGINT. This crate provides the pieces
//! every layer shares:
//!
//! * [`atomic_write`] — durable file replacement (write temp → fsync →
//!   rename) so results, manifests, and snapshots are never observed
//!   half-written, even across power loss.
//! * A versioned, checksummed snapshot container ([`save`] / [`load`]):
//!   magic, format version, configuration hash, payload length, and a
//!   CRC-32 over the payload. Corrupt or config-mismatched files are
//!   rejected with a structured [`CheckpointError`] naming the file and
//!   the reason — never a panic.
//! * [`Snapshot`] / [`Restore`] traits implemented by the stateful
//!   simulation layers (`dramsim::MemorySystem`, the `nmp` functional
//!   engine, the `faultsim` injector).
//! * A JSONL [`manifest`] journal for sweep runners: one fsync'd record
//!   per completed cell, tolerant of a torn trailing line after a crash.
//!
//! Determinism contract: a run restored from a snapshot must replay the
//! exact operation sequence an uninterrupted run would have executed, so
//! the final output is byte-identical. The container stores state as
//! JSON via the workspace `serde`; `f64` values round-trip exactly
//! (shortest-representation printing).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomic;
mod crc;
mod error;
mod format;
mod hash;
pub mod manifest;
mod traits;

pub use atomic::{atomic_write, atomic_write_str};
pub use crc::crc32;
pub use error::CheckpointError;
pub use format::{decode, encode, load, save, try_load, FORMAT_VERSION, MAGIC};
pub use hash::{config_hash, digest_str, fnv1a64};
pub use traits::{Restore, RestoreError, Snapshot};

//! The snapshot container format.
//!
//! Fixed 32-byte little-endian header followed by a JSON payload:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"MNMPCKPT"
//!      8     4  format version (u32)
//!     12     8  configuration hash (u64, FNV-1a over canonical JSON)
//!     20     8  payload length in bytes (u64)
//!     28     4  CRC-32 (IEEE) of the payload
//!     32     -  payload (compact JSON of the snapshot state)
//! ```
//!
//! Loading validates in order: magic, version, truncation, CRC, config
//! hash, and finally JSON decode — each failure maps to a distinct
//! [`CheckpointError`] variant naming the file. Version policy: readers
//! accept only versions `<= FORMAT_VERSION`; the payload schema is
//! additive within a version, and any breaking change to a snapshot
//! state struct must bump [`FORMAT_VERSION`].

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::atomic::atomic_write;
use crate::crc::crc32;
use crate::error::CheckpointError;

/// Magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 8] = *b"MNMPCKPT";

/// Current container format version.
///
/// History: 2 — the DRAM fault-injector image became per-channel
/// (`InjectorSnapshot.states`, one counter-mode stream position per
/// channel lane, replacing the single shared `state`).
pub const FORMAT_VERSION: u32 = 2;

const HEADER_LEN: usize = 32;

/// Frames `payload` in the container format (header + payload bytes).
pub fn encode(config_hash: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&config_hash.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a framed container and returns its payload slice.
///
/// `path` is used only for error messages; `expected_config` must match
/// the hash stored in the header.
pub fn decode<'a>(
    path: &Path,
    bytes: &'a [u8],
    expected_config: u64,
) -> Result<&'a [u8], CheckpointError> {
    let p = || path.display().to_string();
    if bytes.len() < HEADER_LEN {
        if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic { path: p() });
        }
        return Err(CheckpointError::Truncated {
            path: p(),
            needed: HEADER_LEN as u64,
            got: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(CheckpointError::BadMagic { path: p() });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version == 0 || version > FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            path: p(),
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let stored_hash = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes"));
    let avail = (bytes.len() - HEADER_LEN) as u64;
    // Validate the untrusted length against the bytes actually present
    // BEFORE slicing (or letting a caller allocate) anything sized by
    // it: a corrupted header claiming a 16 EiB payload must fail here
    // in constant time, not via an attempted allocation.
    if avail < payload_len {
        return Err(CheckpointError::LengthOverrun {
            path: p(),
            field: "payload_len",
            claimed: payload_len,
            available: avail,
        });
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len as usize];
    let computed = crc32(payload);
    if computed != stored_crc {
        return Err(CheckpointError::ChecksumMismatch {
            path: p(),
            stored: stored_crc,
            computed,
        });
    }
    if stored_hash != expected_config {
        return Err(CheckpointError::ConfigMismatch {
            path: p(),
            expected: expected_config,
            found: stored_hash,
        });
    }
    Ok(payload)
}

/// Serializes `state` and atomically persists it to `path`.
pub fn save<T: Serialize>(path: &Path, config_hash: u64, state: &T) -> Result<(), CheckpointError> {
    let json = serde_json::to_string(state).map_err(|e| CheckpointError::Malformed {
        path: path.display().to_string(),
        detail: format!("state failed to serialize: {e}"),
    })?;
    atomic_write(path, &encode(config_hash, json.as_bytes()))
}

/// Loads and validates a snapshot from `path`.
pub fn load<T: Deserialize>(path: &Path, expected_config: u64) -> Result<T, CheckpointError> {
    let bytes = fs::read(path).map_err(|e| CheckpointError::io(path, "read", &e))?;
    let payload = decode(path, &bytes, expected_config)?;
    let text = std::str::from_utf8(payload).map_err(|e| CheckpointError::Malformed {
        path: path.display().to_string(),
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| CheckpointError::Malformed {
        path: path.display().to_string(),
        detail: format!("payload failed to parse: {e}"),
    })
}

/// [`load`], but a missing file is `Ok(None)` (fresh start) rather
/// than an error. Any *present* file must validate.
pub fn try_load<T: Deserialize>(
    path: &Path,
    expected_config: u64,
) -> Result<Option<T>, CheckpointError> {
    match fs::metadata(path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(CheckpointError::io(path, "stat", &e)),
        Ok(_) => load(path, expected_config).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metanmp-format-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Demo {
        cursor: u64,
        values: Vec<f64>,
    }

    #[test]
    fn round_trip() {
        let dir = scratch("roundtrip");
        let path = dir.join("snap.ckpt");
        let state = Demo {
            cursor: 7,
            values: vec![0.1, 2.5e-3, -1.0],
        };
        save(&path, 0xABCD, &state).unwrap();
        let back: Demo = load(&path, 0xABCD).unwrap();
        assert_eq!(back, state);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_none() {
        let dir = scratch("missing");
        let got: Option<Demo> = try_load(&dir.join("absent.ckpt"), 1).unwrap();
        assert!(got.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bad_magic() {
        let dir = scratch("magic");
        let path = dir.join("snap.ckpt");
        fs::write(&path, b"NOTACKPT-------------------------").unwrap();
        let err = load::<Demo>(&path, 1).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_truncation() {
        let dir = scratch("trunc");
        let path = dir.join("snap.ckpt");
        let state = Demo {
            cursor: 1,
            values: vec![1.0; 32],
        };
        save(&path, 9, &state).unwrap();
        let bytes = fs::read(&path).unwrap();
        // Cut into the payload: the header's payload_len now claims
        // more bytes than the file holds.
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let err = load::<Demo>(&path, 9).unwrap_err();
        assert!(
            matches!(err, CheckpointError::LengthOverrun { .. }),
            "{err}"
        );
        // Cut into the fixed header itself.
        fs::write(&path, &bytes[..HEADER_LEN - 4]).unwrap();
        let err = load::<Demo>(&path, 9).unwrap_err();
        assert!(matches!(err, CheckpointError::Truncated { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_absurd_length_claim_before_allocating() {
        let dir = scratch("overrun");
        let path = dir.join("snap.ckpt");
        let state = Demo {
            cursor: 1,
            values: vec![1.0; 4],
        };
        save(&path, 9, &state).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let real_payload = (bytes.len() - HEADER_LEN) as u64;
        // Claim a 16 EiB payload. If anything sized a buffer or slice
        // by this field before validating it, this test would abort the
        // process instead of returning the structured error.
        bytes[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = load::<Demo>(&path, 9).unwrap_err();
        match err {
            CheckpointError::LengthOverrun {
                field,
                claimed,
                available,
                ..
            } => {
                assert_eq!(field, "payload_len");
                assert_eq!(claimed, u64::MAX);
                assert_eq!(available, real_payload);
            }
            other => panic!("expected LengthOverrun, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bit_flip() {
        let dir = scratch("flip");
        let path = dir.join("snap.ckpt");
        let state = Demo {
            cursor: 1,
            values: vec![1.0; 8],
        };
        save(&path, 9, &state).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = load::<Demo>(&path, 9).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ChecksumMismatch { .. }),
            "{err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_config_mismatch_and_new_version() {
        let dir = scratch("config");
        let path = dir.join("snap.ckpt");
        let state = Demo {
            cursor: 1,
            values: vec![],
        };
        save(&path, 9, &state).unwrap();
        let err = load::<Demo>(&path, 10).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::ConfigMismatch {
                expected: 10,
                found: 9,
                ..
            }
        ));

        // Bump the version field past what we support.
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = load::<Demo>(&path, 9).unwrap_err();
        assert!(
            matches!(err, CheckpointError::UnsupportedVersion { .. }),
            "{err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Stable content hashing for checkpoint headers and manifests.
//!
//! FNV-1a (64-bit) — deterministic across runs and platforms, unlike
//! `std::collections::hash_map::DefaultHasher`, which is seeded per
//! process. Configuration hashes are computed over the canonical JSON
//! rendering of the config, so any field change (and only a field
//! change) invalidates old snapshots.

use serde::Serialize;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a 64-bit hash of a string (manifest result digests).
pub fn digest_str(s: &str) -> u64 {
    fnv1a64(s.as_bytes())
}

/// Hash of a serializable configuration, stable across runs.
///
/// The value is rendered to compact JSON first; two configs hash equal
/// iff their JSON forms are identical. Panics only if the config fails
/// to serialize, which for the plain config structs in this workspace
/// cannot happen.
pub fn config_hash<T: Serialize>(config: &T) -> u64 {
    let json = serde_json::to_string(config).expect("config serializes to JSON");
    fnv1a64(json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn config_hash_tracks_fields() {
        assert_eq!(config_hash(&(1u64, "x")), config_hash(&(1u64, "x")));
        assert_ne!(config_hash(&(1u64, "x")), config_hash(&(2u64, "x")));
    }
}

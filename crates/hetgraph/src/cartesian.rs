//! On-the-fly metapath instance generation via cartesian-like products
//! (§3.1) and the dependency walk that exposes shareable aggregation
//! (§3.2).
//!
//! The key observation of the paper: all instances of `V1-V2-V3` are, per
//! center vertex `c` of type `V2`, the cartesian-like product
//! `N_V1(c) × {c} × N_V3(c)` over `c`'s type-separated neighbor lists.
//! Longer metapaths decompose into a first ternary product followed by
//! one extension step per additional hop ([`product_plan`]). Because the
//! product enumerates instances grouped by shared prefix, the aggregate
//! of a prefix can be computed once and reused by every instance that
//! extends it — the basis of the RCEU and of the software reuse engine.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::graph::HeteroGraph;
use crate::metapath::Metapath;
use crate::types::{Vertex, VertexId, VertexTypeId};

/// One step of the cartesian-like decomposition of a metapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProductStep {
    /// The initial ternary product `N_left(c) × {c} × N_right(c)` over
    /// centers `c` of `center` type. Covers the first two hops.
    Ternary {
        /// Type of the left operand set.
        left: VertexTypeId,
        /// Type of the center (fixed) vertex.
        center: VertexTypeId,
        /// Type of the right operand set.
        right: VertexTypeId,
    },
    /// An extension step: partial instances ending at a vertex of
    /// `at` type are crossed with that vertex's neighbors of `with`
    /// type. Covers one additional hop.
    Extend {
        /// Endpoint type of the partial instances.
        at: VertexTypeId,
        /// Neighbor type the product extends with.
        with: VertexTypeId,
    },
    /// Degenerate single-hop metapath (`L == 1`): plain edge iteration.
    Edges {
        /// Source type.
        src: VertexTypeId,
        /// Destination type.
        dst: VertexTypeId,
    },
}

/// Decomposes a metapath into cartesian-like product steps (§3.1).
///
/// A metapath with `L` hops yields one [`ProductStep::Ternary`] followed
/// by `L - 2` [`ProductStep::Extend`] steps (or a single
/// [`ProductStep::Edges`] when `L == 1`).
///
/// ```
/// use hetgraph::{GraphSchema, Metapath};
/// use hetgraph::cartesian::{product_plan, ProductStep};
/// let mut s = GraphSchema::new();
/// let a = s.add_vertex_type("Author", 'A', 8);
/// let p = s.add_vertex_type("Paper", 'P', 8);
/// let c = s.add_vertex_type("Conf", 'C', 8);
/// s.add_relation(a, p);
/// s.add_relation(p, c);
/// let mp = Metapath::parse("APCPA", &s)?;
/// let plan = product_plan(&mp);
/// assert_eq!(plan.len(), 3); // ternary + 2 extensions
/// assert!(matches!(plan[0], ProductStep::Ternary { .. }));
/// # Ok::<(), hetgraph::GraphError>(())
/// ```
pub fn product_plan(metapath: &Metapath) -> Vec<ProductStep> {
    let t = metapath.vertex_types();
    if t.len() == 2 {
        return vec![ProductStep::Edges {
            src: t[0],
            dst: t[1],
        }];
    }
    let mut plan = vec![ProductStep::Ternary {
        left: t[0],
        center: t[1],
        right: t[2],
    }];
    for i in 2..t.len() - 1 {
        plan.push(ProductStep::Extend {
            at: t[i],
            with: t[i + 1],
        });
    }
    plan
}

/// A ternary product instance source for one center vertex: the CarPU's
/// unit of work (type-1 queue × type-2 register × type-3 queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CenterProduct<'g> {
    /// Local id of the center (type-2) vertex.
    pub center: u32,
    /// The center's neighbors of the metapath's first type.
    pub left: &'g [u32],
    /// The center's neighbors of the metapath's third type.
    pub right: &'g [u32],
}

impl CenterProduct<'_> {
    /// Number of instances this product generates.
    pub fn instance_count(&self) -> usize {
        self.left.len() * self.right.len()
    }
}

/// Iterates the ternary products of the *first* decomposition step of a
/// metapath with at least two hops, one per center vertex.
///
/// # Errors
///
/// Returns [`GraphError::MetapathTooShort`] if the metapath has fewer
/// than three vertex types, and propagates neighbor-query errors.
pub fn center_products<'g>(
    graph: &'g HeteroGraph,
    metapath: &Metapath,
) -> Result<Vec<CenterProduct<'g>>, GraphError> {
    let t = metapath.vertex_types();
    if t.len() < 3 {
        return Err(GraphError::MetapathTooShort(t.len()));
    }
    let (left_ty, center_ty, right_ty) = (t[0], t[1], t[2]);
    let center_count = graph.vertex_count(center_ty)?;
    let mut out = Vec::with_capacity(center_count as usize);
    for c in 0..center_count {
        let v = Vertex::new(center_ty, VertexId::new(c));
        let left = graph.typed_neighbors(v, left_ty)?;
        let right = graph.typed_neighbors(v, right_ty)?;
        if !left.is_empty() && !right.is_empty() {
            out.push(CenterProduct {
                center: c,
                left,
                right,
            });
        }
    }
    Ok(out)
}

/// Streaming generator of metapath instances.
///
/// Yields every instance exactly once, grouped by shared prefix (depth-
/// first order), without ever materializing the instance list. This is
/// the software realization of generating instances "on the fly".
///
/// Use [`InstanceStream::next_into`] to avoid per-instance allocation,
/// or the [`Iterator`] impl for convenience.
#[derive(Debug)]
pub struct InstanceStream<'g> {
    graph: &'g HeteroGraph,
    types: Vec<VertexTypeId>,
    start_cursor: u32,
    start_count: u32,
    stack: Vec<u32>,
    cursors: Vec<usize>,
}

impl<'g> InstanceStream<'g> {
    /// Creates a stream over all instances of `metapath` in `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the metapath's start type is unknown to
    /// the graph.
    pub fn new(graph: &'g HeteroGraph, metapath: &Metapath) -> Result<Self, GraphError> {
        let start_count = graph.vertex_count(metapath.start_type())?;
        Ok(InstanceStream {
            graph,
            types: metapath.vertex_types().to_vec(),
            start_cursor: 0,
            start_count,
            stack: Vec::new(),
            cursors: Vec::new(),
        })
    }

    /// Advances to the next instance, writing it into `buf`.
    ///
    /// Returns `false` when the stream is exhausted. `buf` is cleared
    /// and refilled on success.
    pub fn next_into(&mut self, buf: &mut Vec<u32>) -> bool {
        let stride = self.types.len();
        loop {
            if self.stack.is_empty() {
                if self.start_cursor >= self.start_count {
                    return false;
                }
                self.stack.push(self.start_cursor);
                self.cursors.push(0);
                self.start_cursor += 1;
            }
            let depth = self.stack.len() - 1;
            if depth + 1 == stride {
                buf.clear();
                buf.extend_from_slice(&self.stack);
                self.stack.pop();
                self.cursors.pop();
                return true;
            }
            let v = Vertex::new(
                self.types[depth],
                VertexId::new(*self.stack.last().expect("stack non-empty")),
            );
            let neighbors = self
                .graph
                .typed_neighbors(v, self.types[depth + 1])
                .expect("types validated at construction");
            let cursor = self.cursors.last_mut().expect("cursor stack in sync");
            if *cursor < neighbors.len() {
                let next = neighbors[*cursor];
                *cursor += 1;
                self.stack.push(next);
                self.cursors.push(0);
            } else {
                self.stack.pop();
                self.cursors.pop();
            }
        }
    }
}

impl Iterator for InstanceStream<'_> {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut buf = Vec::new();
        if self.next_into(&mut buf) {
            Some(buf)
        } else {
            None
        }
    }
}

/// Events emitted by [`walk_prefix_tree`].
///
/// `Enter(d, v)` means the walk extended the current prefix with vertex
/// `v` at depth `d`; the reuse-aware dataflow performs exactly one
/// aggregation per `Enter` with `d ≥ 1`. `Leaf` fires when the prefix is
/// a complete instance (after its `Enter`). `Exit(d)` unwinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkEvent {
    /// The prefix grew to depth `.0` by appending local vertex `.1`.
    Enter(usize, u32),
    /// The current prefix is a complete metapath instance.
    Leaf,
    /// The prefix shrank back past depth `.0`.
    Exit(usize),
}

/// Walks the dependency (prefix) tree of all instances dispersing from
/// one start vertex, invoking `visit` for every event.
///
/// This is the §3.2 dataflow: aggregation proceeds along the direction
/// the instances disperse from the start vertex, so a shared prefix is
/// aggregated once (`Enter`) and reused by every completion (`Leaf`)
/// beneath it.
///
/// # Errors
///
/// Propagates [`GraphError`] from neighbor queries.
pub fn walk_prefix_tree<F>(
    graph: &HeteroGraph,
    metapath: &Metapath,
    start: VertexId,
    mut visit: F,
) -> Result<(), GraphError>
where
    F: FnMut(WalkEvent),
{
    let types = metapath.vertex_types();
    let last = types.len() - 1;
    // Validate the start vertex eagerly.
    let count = graph.vertex_count(types[0])?;
    if start.raw() >= count {
        return Err(GraphError::VertexOutOfRange {
            vertex: Vertex::new(types[0], start),
            count,
        });
    }

    fn recurse<F: FnMut(WalkEvent)>(
        graph: &HeteroGraph,
        types: &[VertexTypeId],
        last: usize,
        depth: usize,
        vertex: u32,
        visit: &mut F,
    ) -> Result<(), GraphError> {
        visit(WalkEvent::Enter(depth, vertex));
        if depth == last {
            visit(WalkEvent::Leaf);
        } else {
            let v = Vertex::new(types[depth], VertexId::new(vertex));
            // Copy out the neighbor ids to keep the borrow local; depth
            // is bounded by metapath length (≤ 5 in practice).
            let neighbors: Vec<u32> = graph.typed_neighbors(v, types[depth + 1])?.to_vec();
            for n in neighbors {
                recurse(graph, types, last, depth + 1, n, visit)?;
            }
        }
        visit(WalkEvent::Exit(depth));
        Ok(())
    }

    recurse(graph, types, last, 0, start.raw(), &mut visit)
}

/// Aggregation-work statistics of one metapath on one graph, comparing
/// the naive per-instance dataflow to the reuse-aware dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseStats {
    /// Vector-aggregation operations the naive dataflow performs: `L`
    /// per instance (combining `L+1` vertex features).
    pub naive_aggregations: u128,
    /// Vector-aggregation operations the reuse dataflow performs: one
    /// per prefix-tree node of depth ≥ 1.
    pub shared_aggregations: u128,
    /// Total number of instances.
    pub instances: u128,
}

impl ReuseStats {
    /// Fraction of naive aggregations that are redundant (Figure 5).
    pub fn redundancy_ratio(&self) -> f64 {
        if self.naive_aggregations == 0 {
            0.0
        } else {
            1.0 - (self.shared_aggregations as f64 / self.naive_aggregations as f64)
        }
    }
}

/// Computes [`ReuseStats`] in closed form (no enumeration).
///
/// # Errors
///
/// Propagates [`GraphError`] from the DP counters.
pub fn reuse_stats(graph: &HeteroGraph, metapath: &Metapath) -> Result<ReuseStats, GraphError> {
    let instances = crate::instances::count_instances(graph, metapath)?;
    let shared = crate::instances::count_prefix_nodes(graph, metapath)?;
    Ok(ReuseStats {
        naive_aggregations: instances * metapath.length() as u128,
        shared_aggregations: shared,
        instances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HeteroGraphBuilder;
    use crate::instances::{count_instances, enumerate_instances};
    use crate::schema::GraphSchema;

    fn figure6() -> (HeteroGraph, Metapath) {
        let mut schema = GraphSchema::new();
        let a = schema.add_vertex_type("A", 'A', 4);
        let b = schema.add_vertex_type("B", 'B', 4);
        schema.add_relation(a, b);
        let mut builder = HeteroGraphBuilder::new(schema);
        builder.set_vertex_count(a, 3);
        builder.set_vertex_count(b, 3);
        let va = |i| Vertex::new(a, VertexId::new(i));
        let vb = |i| Vertex::new(b, VertexId::new(i));
        for (x, y) in [(0, 0), (1, 0), (0, 1), (1, 1), (2, 1), (2, 2)] {
            builder.add_edge(va(x), vb(y)).unwrap();
        }
        let g = builder.finish();
        let mp = Metapath::parse("ABA", g.schema()).unwrap();
        (g, mp)
    }

    #[test]
    fn stream_matches_enumeration() {
        let (g, mp) = figure6();
        let materialized = enumerate_instances(&g, &mp, usize::MAX).unwrap();
        let streamed: Vec<Vec<u32>> = InstanceStream::new(&g, &mp).unwrap().collect();
        assert_eq!(streamed.len(), materialized.len());
        for (s, m) in streamed.iter().zip(materialized.iter()) {
            assert_eq!(s.as_slice(), m);
        }
    }

    #[test]
    fn stream_next_into_reuses_buffer() {
        let (g, mp) = figure6();
        let mut stream = InstanceStream::new(&g, &mp).unwrap();
        let mut buf = Vec::new();
        let mut n = 0;
        while stream.next_into(&mut buf) {
            assert_eq!(buf.len(), 3);
            n += 1;
        }
        assert_eq!(n, 14);
    }

    #[test]
    fn center_products_cover_all_instances() {
        let (g, mp) = figure6();
        let products = center_products(&g, &mp).unwrap();
        let total: usize = products.iter().map(CenterProduct::instance_count).sum();
        assert_eq!(total as u128, count_instances(&g, &mp).unwrap());
        // Vertex ③ (B id 1) has 3 A-neighbors: product is 3 × 3 = 9.
        let p3 = products.iter().find(|p| p.center == 1).unwrap();
        assert_eq!(p3.instance_count(), 9);
    }

    #[test]
    fn product_plan_shapes() {
        let mut s = GraphSchema::new();
        let a = s.add_vertex_type("Author", 'A', 8);
        let p = s.add_vertex_type("Paper", 'P', 8);
        let c = s.add_vertex_type("Conf", 'C', 8);
        s.add_relation(a, p);
        s.add_relation(p, c);
        let apa = Metapath::parse("APA", &s).unwrap();
        assert_eq!(product_plan(&apa).len(), 1);
        let apcpa = Metapath::parse("APCPA", &s).unwrap();
        let plan = product_plan(&apcpa);
        assert_eq!(plan.len(), 3);
        assert!(matches!(plan[1], ProductStep::Extend { .. }));
        let ap = Metapath::parse("AP", &s).unwrap();
        assert!(matches!(product_plan(&ap)[0], ProductStep::Edges { .. }));
    }

    #[test]
    fn walk_counts_match_closed_form() {
        let (g, mp) = figure6();
        let mut enters_deep = 0u128; // depth >= 1
        let mut leaves = 0u128;
        for s in 0..3 {
            walk_prefix_tree(&g, &mp, VertexId::new(s), |e| match e {
                WalkEvent::Enter(d, _) if d >= 1 => enters_deep += 1,
                WalkEvent::Leaf => leaves += 1,
                _ => {}
            })
            .unwrap();
        }
        let stats = reuse_stats(&g, &mp).unwrap();
        assert_eq!(leaves, stats.instances);
        assert_eq!(enters_deep, stats.shared_aggregations);
    }

    #[test]
    fn reuse_saves_work_on_figure6() {
        let (g, mp) = figure6();
        let stats = reuse_stats(&g, &mp).unwrap();
        assert_eq!(stats.instances, 14);
        assert_eq!(stats.naive_aggregations, 28);
        // Prefix nodes: depth-1 nodes = #A-B edges as walks = 6;
        // depth-2 nodes = 14 completions. Shared = 20 < 28.
        assert_eq!(stats.shared_aggregations, 20);
        let ratio = stats.redundancy_ratio();
        assert!(ratio > 0.28 && ratio < 0.29, "ratio = {ratio}");
    }

    #[test]
    fn walk_rejects_out_of_range_start() {
        let (g, mp) = figure6();
        let err = walk_prefix_tree(&g, &mp, VertexId::new(99), |_| {}).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn events_are_balanced() {
        let (g, mp) = figure6();
        let mut depth_track: i64 = 0;
        walk_prefix_tree(&g, &mp, VertexId::new(0), |e| match e {
            WalkEvent::Enter(..) => depth_track += 1,
            WalkEvent::Exit(..) => depth_track -= 1,
            WalkEvent::Leaf => {}
        })
        .unwrap();
        assert_eq!(depth_track, 0);
    }
}

//! Error types for heterogeneous graph construction and queries.

use std::error::Error;
use std::fmt;

use crate::types::{Relation, Vertex, VertexTypeId};

/// Errors raised while building or querying a heterogeneous graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex type id was used that the schema does not define.
    UnknownVertexType(VertexTypeId),
    /// A vertex type name was looked up that the schema does not define.
    UnknownVertexTypeName(String),
    /// An edge referenced a relation the schema does not define.
    UnknownRelation(Relation),
    /// A vertex id was out of range for its type.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: Vertex,
        /// Number of vertices of that type.
        count: u32,
    },
    /// A metapath was empty or had fewer than two vertex types.
    MetapathTooShort(usize),
    /// A metapath stepped over a relation with no edges in the schema.
    MetapathUnknownRelation {
        /// Position of the offending hop (0-based).
        hop: usize,
        /// The relation that does not exist.
        relation: Relation,
    },
    /// Too many vertex types for the compact id space.
    TooManyVertexTypes(usize),
    /// An edge connected a vertex to itself.
    SelfLoop(Vertex),
    /// The same edge was added more than once in a checked build.
    DuplicateEdge {
        /// One endpoint (canonical order).
        a: Vertex,
        /// The other endpoint (canonical order).
        b: Vertex,
    },
    /// A feature value was NaN or infinite.
    NonFiniteFeature {
        /// The vertex type whose feature matrix held the value.
        ty: VertexTypeId,
        /// Row (local vertex id) of the offending value.
        row: usize,
        /// Column of the offending value.
        col: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertexType(ty) => {
                write!(f, "unknown vertex type {ty}")
            }
            GraphError::UnknownVertexTypeName(name) => {
                write!(f, "unknown vertex type name {name:?}")
            }
            GraphError::UnknownRelation(rel) => {
                write!(f, "relation {rel} is not declared in the schema")
            }
            GraphError::VertexOutOfRange { vertex, count } => {
                write!(
                    f,
                    "vertex {vertex} is out of range (type has {count} vertices)"
                )
            }
            GraphError::MetapathTooShort(len) => {
                write!(
                    f,
                    "metapath must contain at least two vertex types, got {len}"
                )
            }
            GraphError::MetapathUnknownRelation { hop, relation } => {
                write!(
                    f,
                    "metapath hop {hop} crosses undeclared relation {relation}"
                )
            }
            GraphError::TooManyVertexTypes(n) => {
                write!(f, "schema declares {n} vertex types, maximum is 256")
            }
            GraphError::SelfLoop(v) => {
                write!(f, "self-loop on vertex {v} is not supported")
            }
            GraphError::DuplicateEdge { a, b } => {
                write!(f, "edge {a}-{b} was added more than once")
            }
            GraphError::NonFiniteFeature { ty, row, col } => {
                write!(
                    f,
                    "non-finite feature value for vertex type {ty} at row {row}, column {col}"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{VertexId, VertexTypeId};

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::UnknownVertexType(VertexTypeId::new(3));
        assert!(e.to_string().contains("T3"));

        let e = GraphError::VertexOutOfRange {
            vertex: Vertex::new(VertexTypeId::new(0), VertexId::new(10)),
            count: 5,
        };
        let s = e.to_string();
        assert!(s.contains("out of range"));
        assert!(s.contains('5'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
    }

    #[test]
    fn validation_variants_name_the_offender() {
        let a = Vertex::new(VertexTypeId::new(0), VertexId::new(1));
        let b = Vertex::new(VertexTypeId::new(1), VertexId::new(2));
        let s = GraphError::DuplicateEdge { a, b }.to_string();
        assert!(s.contains("more than once"), "{s}");

        let s = GraphError::NonFiniteFeature {
            ty: VertexTypeId::new(2),
            row: 7,
            col: 3,
        }
        .to_string();
        assert!(s.contains("non-finite"), "{s}");
        assert!(s.contains('7') && s.contains('3'), "{s}");
    }
}

//! Synthetic dataset presets matching the paper's Table 3.
//!
//! The paper evaluates on DBLP, IMDB, LastFM, OGB-MAG, and OAG. The raw
//! dumps are not redistributable, so this module generates seeded
//! synthetic graphs with the same *type schema*, the same vertex and
//! edge counts, skewed (Zipf-like) degree distributions, and the same
//! metapath sets. The evaluation depends on those topology statistics —
//! in particular the combinatorial explosion of metapath instances —
//! which the generators reproduce; see DESIGN.md §2 for the
//! substitution rationale.
//!
//! The two web-scale presets (OGB-MAG, OAG) accept a scale factor so
//! cycle-level simulation remains tractable; counting-based analyses run
//! at any scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::graph::{HeteroGraph, HeteroGraphBuilder};
use crate::metapath::Metapath;
use crate::schema::GraphSchema;
use crate::types::{Vertex, VertexId, VertexTypeId};

/// Identifier of one of the paper's five datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// DBLP academic graph (paper's "DP").
    Dblp,
    /// IMDB movie graph ("IB").
    Imdb,
    /// LastFM music graph ("LF").
    Lastfm,
    /// OGB-MAG academic graph ("OM").
    OgbMag,
    /// Open Academic Graph ("OG").
    Oag,
}

impl DatasetId {
    /// All five presets in the paper's order.
    pub const ALL: [DatasetId; 5] = [
        DatasetId::Dblp,
        DatasetId::Imdb,
        DatasetId::Lastfm,
        DatasetId::OgbMag,
        DatasetId::Oag,
    ];

    /// The paper's two-letter abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            DatasetId::Dblp => "DP",
            DatasetId::Imdb => "IB",
            DatasetId::Lastfm => "LF",
            DatasetId::OgbMag => "OM",
            DatasetId::Oag => "OG",
        }
    }

    /// Full dataset name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Dblp => "DBLP",
            DatasetId::Imdb => "IMDB",
            DatasetId::Lastfm => "LastFM",
            DatasetId::OgbMag => "OGB-MAG",
            DatasetId::Oag => "OAG",
        }
    }

    /// Returns `true` for the web-scale presets that exceed GPU memory
    /// in the paper (Figure 12 marks them OOM on the V100).
    pub fn is_web_scale(self) -> bool {
        matches!(self, DatasetId::OgbMag | DatasetId::Oag)
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// A generated dataset: graph plus its defined metapaths.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which preset generated this dataset.
    pub id: DatasetId,
    /// The synthetic heterogeneous graph.
    pub graph: HeteroGraph,
    /// The metapaths the paper defines for this dataset (Table 3).
    pub metapaths: Vec<Metapath>,
    /// The scale factor the generator was invoked with.
    pub scale: f64,
}

impl Dataset {
    /// Finds a metapath by its mnemonic name (e.g. `"APA"`).
    pub fn metapath(&self, name: &str) -> Option<&Metapath> {
        self.metapaths.iter().find(|m| m.name() == name)
    }
}

/// Configuration for dataset generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Multiplier on vertex and edge counts, in `(0, 1]`. The web-scale
    /// presets default to `1/64` elsewhere in the workspace; `1.0`
    /// reproduces Table 3 exactly.
    pub scale: f64,
    /// RNG seed; generation is fully deterministic given the seed.
    pub seed: u64,
    /// Zipf skew exponent for degree distributions. `0.0` is uniform;
    /// the default `0.75` produces the heavy-tailed fan-out real
    /// academic/media graphs exhibit (and that drives instance
    /// explosion).
    pub skew: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            scale: 1.0,
            seed: 0x4d_65_74_61_4e_4d_50, // "MetaNMP"
            skew: 0.75,
        }
    }
}

impl GeneratorConfig {
    /// Convenience: default config at a given scale.
    pub fn at_scale(scale: f64) -> Self {
        GeneratorConfig {
            scale,
            ..Self::default()
        }
    }
}

struct TypeSpec {
    name: &'static str,
    mnemonic: char,
    count: u64,
    feature_dim: usize,
}

struct RelSpec {
    a: char,
    b: char,
    edges: u64,
}

struct PresetSpec {
    types: Vec<TypeSpec>,
    relations: Vec<RelSpec>,
    metapaths: Vec<&'static str>,
}

fn preset(id: DatasetId) -> PresetSpec {
    let t = |name, mnemonic, count, feature_dim| TypeSpec {
        name,
        mnemonic,
        count,
        feature_dim,
    };
    let r = |a, b, edges| RelSpec { a, b, edges };
    match id {
        DatasetId::Dblp => PresetSpec {
            types: vec![
                t("Author", 'A', 4057, 334),
                t("Paper", 'P', 14328, 4231),
                t("Term", 'T', 7723, 50),
                t("Venue", 'V', 20, 20),
            ],
            relations: vec![r('A', 'P', 19645), r('P', 'T', 85810), r('P', 'V', 14328)],
            metapaths: vec!["APA", "APTPA", "APVPA"],
        },
        DatasetId::Imdb => PresetSpec {
            types: vec![
                t("Movie", 'M', 4278, 3066),
                t("Director", 'D', 2081, 3066),
                t("Actor", 'A', 5257, 3066),
            ],
            relations: vec![r('M', 'D', 4278), r('M', 'A', 12828)],
            metapaths: vec!["MDM", "MAM", "DMD", "DMAMD", "AMA", "AMDMA"],
        },
        DatasetId::Lastfm => PresetSpec {
            types: vec![
                t("User", 'U', 1892, 800),
                t("Artist", 'A', 17632, 1800),
                t("Tag", 'T', 1088, 200),
            ],
            relations: vec![r('U', 'U', 12717), r('U', 'A', 92834), r('A', 'T', 23253)],
            metapaths: vec!["UAU", "UATAU", "AUA", "ATA"],
        },
        // Note: the paper's Table 3 prints 36389 papers for OGB-MAG,
        // which is a typesetting truncation — the public OGB-MAG has
        // 736389 papers, and the listed 7.1M A-P edges require it.
        DatasetId::OgbMag => PresetSpec {
            types: vec![
                t("Author", 'A', 1_134_649, 128),
                t("Paper", 'P', 736_389, 128),
                t("Institution", 'I', 8_740, 128),
                t("Field", 'F', 59_965, 128),
            ],
            relations: vec![
                r('A', 'I', 1_043_998),
                r('A', 'P', 7_145_660),
                r('P', 'P', 5_416_271),
                r('P', 'F', 7_505_078),
            ],
            metapaths: vec!["APA", "APFPA"],
        },
        DatasetId::Oag => PresetSpec {
            types: vec![
                t("Author", 'A', 5_985_759, 256),
                t("Paper", 'P', 5_597_605, 256),
                t("Institution", 'I', 27_433, 256),
                t("Field", 'F', 119_537, 256),
                t("Venue", 'V', 16_931, 256),
            ],
            relations: vec![
                r('A', 'I', 7_190_480),
                r('A', 'P', 15_571_614),
                r('P', 'P', 5_597_606),
                r('P', 'F', 47_462_559),
                r('P', 'V', 31_441_552),
            ],
            metapaths: vec!["APA", "APFPA"],
        },
    }
}

/// Samples an index in `0..n` from a truncated Zipf-like distribution
/// using inverse-CDF on the continuous approximation. `skew == 0`
/// degenerates to uniform.
fn sample_skewed(rng: &mut StdRng, n: u64, skew: f64) -> u64 {
    debug_assert!(n > 0);
    if skew <= f64::EPSILON || n == 1 {
        return rng.gen_range(0..n);
    }
    // Continuous Zipf via inverse transform: P(X <= x) ∝ x^(1-skew) for
    // skew < 1; clamp for numerical safety.
    let u: f64 = rng.gen_range_open();
    let exp = 1.0 - skew;
    let x = (u * (n as f64).powf(exp)).powf(1.0 / exp);
    (x as u64).min(n - 1)
}

trait RngExt {
    fn gen_range_open(&mut self) -> f64;
}

impl RngExt for StdRng {
    fn gen_range_open(&mut self) -> f64 {
        // Avoid exactly 0 so powf stays finite.
        loop {
            let v: f64 = self.gen();
            if v > 0.0 {
                return v;
            }
        }
    }
}

/// Generates one of the paper's dataset presets.
///
/// Deterministic for a given [`GeneratorConfig`]. Vertex and edge
/// counts scale linearly with `config.scale` (minimum of 1 vertex per
/// type).
///
/// ```
/// use hetgraph::datasets::{generate, DatasetId, GeneratorConfig};
/// let ds = generate(DatasetId::Dblp, GeneratorConfig::at_scale(0.05));
/// assert_eq!(ds.id, DatasetId::Dblp);
/// assert_eq!(ds.metapaths.len(), 3);
/// ```
///
/// # Panics
///
/// Panics if `config.scale` is not in `(0, 1]`.
pub fn generate(id: DatasetId, config: GeneratorConfig) -> Dataset {
    assert!(
        config.scale > 0.0 && config.scale <= 1.0,
        "scale must be in (0, 1], got {}",
        config.scale
    );
    let spec = preset(id);
    let mut schema = GraphSchema::new();
    let mut type_ids: Vec<(char, VertexTypeId, u64)> = Vec::new();
    for t in &spec.types {
        let count = ((t.count as f64 * config.scale).round() as u64).max(1);
        let ty = schema.add_vertex_type(t.name, t.mnemonic, t.feature_dim);
        type_ids.push((t.mnemonic, ty, count));
    }
    for rel in &spec.relations {
        let a = schema.type_by_mnemonic(rel.a).expect("preset is valid");
        let b = schema.type_by_mnemonic(rel.b).expect("preset is valid");
        schema.add_relation(a, b);
    }

    let lookup = |m: char| {
        type_ids
            .iter()
            .find(|(c, ..)| *c == m)
            .map(|&(_, ty, n)| (ty, n))
            .expect("preset is valid")
    };

    let mut builder = HeteroGraphBuilder::new(schema.clone());
    for &(_, ty, n) in &type_ids {
        builder.set_vertex_count(ty, n as u32);
    }

    let mut rng = StdRng::seed_from_u64(config.seed ^ id.abbrev().len() as u64 ^ fxhash(id));
    for rel in &spec.relations {
        let (ta, na) = lookup(rel.a);
        let (tb, nb) = lookup(rel.b);
        let edges = ((rel.edges as f64 * config.scale).round() as u64).max(1);
        if ta == tb && na <= 1 {
            continue; // a single-vertex self relation has no valid edges
        }
        for _ in 0..edges {
            loop {
                let sa = sample_skewed(&mut rng, na, config.skew);
                let sb = sample_skewed(&mut rng, nb, config.skew);
                if ta == tb && sa == sb {
                    continue; // resample to avoid self-loops
                }
                builder
                    .add_edge(
                        Vertex::new(ta, VertexId::new(sa as u32)),
                        Vertex::new(tb, VertexId::new(sb as u32)),
                    )
                    .expect("generated edges are in range");
                break;
            }
        }
    }
    let graph = builder.finish();
    let metapaths = spec
        .metapaths
        .iter()
        .map(|m| Metapath::parse(m, &schema).expect("preset metapaths are valid"))
        .collect();
    Dataset {
        id,
        graph,
        metapaths,
        scale: config.scale,
    }
}

fn fxhash(id: DatasetId) -> u64 {
    match id {
        DatasetId::Dblp => 1,
        DatasetId::Imdb => 2,
        DatasetId::Lastfm => 3,
        DatasetId::OgbMag => 4,
        DatasetId::Oag => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::count_instances;

    #[test]
    fn dblp_full_scale_matches_table3_counts() {
        let ds = generate(DatasetId::Dblp, GeneratorConfig::default());
        let s = ds.graph.schema();
        let a = s.type_by_mnemonic('A').unwrap();
        let p = s.type_by_mnemonic('P').unwrap();
        assert_eq!(ds.graph.vertex_count(a).unwrap(), 4057);
        assert_eq!(ds.graph.vertex_count(p).unwrap(), 14328);
        // Sampling collisions dedup away a small fraction of edges; the
        // counts must stay within a few percent of Table 3.
        let nominal = (19645 + 85810 + 14328) as f64;
        let actual = ds.graph.total_edge_count() as f64;
        assert!(actual <= nominal);
        assert!(actual > nominal * 0.75, "actual = {actual}");
        assert_eq!(ds.metapaths.len(), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.1));
        let b = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.1));
        let mp = a.metapath("MAM").unwrap();
        assert_eq!(
            count_instances(&a.graph, mp).unwrap(),
            count_instances(&b.graph, b.metapath("MAM").unwrap()).unwrap()
        );
        assert_eq!(a.graph.total_edge_count(), b.graph.total_edge_count());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(
            DatasetId::Imdb,
            GeneratorConfig {
                seed: 1,
                ..GeneratorConfig::at_scale(0.1)
            },
        );
        let b = generate(
            DatasetId::Imdb,
            GeneratorConfig {
                seed: 2,
                ..GeneratorConfig::at_scale(0.1)
            },
        );
        let mp = a.metapath("AMA").unwrap();
        let ca = count_instances(&a.graph, mp).unwrap();
        let cb = count_instances(&b.graph, b.metapath("AMA").unwrap()).unwrap();
        assert_ne!(ca, cb);
    }

    #[test]
    fn scaling_reduces_size() {
        let full = generate(DatasetId::Lastfm, GeneratorConfig::default());
        let small = generate(DatasetId::Lastfm, GeneratorConfig::at_scale(0.1));
        assert!(small.graph.total_vertex_count() < full.graph.total_vertex_count());
        assert!(small.graph.total_edge_count() < full.graph.total_edge_count());
    }

    #[test]
    fn lastfm_has_self_relation_metapath_support() {
        // U-U is a self relation; ensure generation and metapaths work.
        let ds = generate(DatasetId::Lastfm, GeneratorConfig::at_scale(0.2));
        assert!(ds.metapath("UAU").is_some());
        let s = ds.graph.schema();
        let u = s.type_by_mnemonic('U').unwrap();
        assert!(ds.graph.relation_csr(u, u).is_some());
    }

    #[test]
    fn instance_explosion_on_long_metapaths() {
        // The 5-hop LF-UATAU must explode combinatorially relative to
        // UAU — this is the Table 1 phenomenon.
        let ds = generate(DatasetId::Lastfm, GeneratorConfig::at_scale(0.25));
        let short = count_instances(&ds.graph, ds.metapath("UAU").unwrap()).unwrap();
        let long = count_instances(&ds.graph, ds.metapath("UATAU").unwrap()).unwrap();
        assert!(long > 10 * short, "long = {long}, short = {short}");
    }

    #[test]
    fn web_scale_presets_generate_at_small_scale() {
        let ds = generate(DatasetId::OgbMag, GeneratorConfig::at_scale(0.004));
        assert!(ds.graph.total_vertex_count() > 0);
        assert!(ds.id.is_web_scale());
        assert_eq!(ds.metapaths.len(), 2);
    }

    #[test]
    fn skew_increases_instance_count() {
        let uniform = generate(
            DatasetId::Imdb,
            GeneratorConfig {
                skew: 0.0,
                ..GeneratorConfig::at_scale(0.25)
            },
        );
        let skewed = generate(
            DatasetId::Imdb,
            GeneratorConfig {
                skew: 0.9,
                ..GeneratorConfig::at_scale(0.25)
            },
        );
        let mp_u = uniform.metapath("AMA").unwrap();
        let mp_s = skewed.metapath("AMA").unwrap();
        let cu = count_instances(&uniform.graph, mp_u).unwrap();
        let cs = count_instances(&skewed.graph, mp_s).unwrap();
        assert!(cs > cu, "skewed {cs} <= uniform {cu}");
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        generate(DatasetId::Dblp, GeneratorConfig::at_scale(0.0));
    }

    #[test]
    fn abbrevs_and_names() {
        assert_eq!(DatasetId::Dblp.abbrev(), "DP");
        assert_eq!(DatasetId::Oag.name(), "OAG");
        assert_eq!(DatasetId::ALL.len(), 5);
    }
}

//! The heterogeneous graph container with the paper's optimized layout.
//!
//! [`HeteroGraph`] keeps one CSR per *directed typed relation*
//! (§4.1): neighbors of different types are stored separately, so the
//! cartesian-like product reads a homogeneous neighbor slice directly
//! instead of filtering a mixed adjacency list per edge. Edges are
//! undirected at the model level; both directions are materialized.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::csr::{Csr, CsrBuilder};
use crate::error::GraphError;
use crate::schema::GraphSchema;
use crate::types::{Relation, Vertex, VertexId, VertexTypeId};

/// An immutable heterogeneous graph.
///
/// Construct one with [`HeteroGraphBuilder`]. All queries are `O(1)`
/// slice lookups thanks to the type-separated CSR layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeteroGraph {
    schema: GraphSchema,
    vertex_counts: Vec<u32>,
    /// Directed adjacency keyed by (source type, destination type).
    adjacency: BTreeMap<(VertexTypeId, VertexTypeId), Csr>,
    /// Undirected edge count per canonical relation.
    edge_counts: BTreeMap<Relation, usize>,
}

impl HeteroGraph {
    /// The schema this graph instantiates.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    /// Number of vertices of the given type.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertexType`] for undeclared types.
    pub fn vertex_count(&self, ty: VertexTypeId) -> Result<u32, GraphError> {
        self.vertex_counts
            .get(ty.index())
            .copied()
            .ok_or(GraphError::UnknownVertexType(ty))
    }

    /// Total number of vertices across all types.
    pub fn total_vertex_count(&self) -> u64 {
        self.vertex_counts.iter().map(|&c| c as u64).sum()
    }

    /// Total number of undirected edges across all relations.
    pub fn total_edge_count(&self) -> u64 {
        self.edge_counts.values().map(|&c| c as u64).sum()
    }

    /// Undirected edge count of one relation (0 if the relation carries
    /// no edges).
    pub fn edge_count(&self, rel: Relation) -> usize {
        self.edge_counts.get(&rel).copied().unwrap_or(0)
    }

    /// Neighbors of `v` having type `neighbor_ty`.
    ///
    /// This is the §4.1 fast path: one slice lookup, no type checks.
    /// Returns an empty slice when the relation carries no edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if `v.id` exceeds the
    /// vertex count of `v.ty`, and [`GraphError::UnknownVertexType`] for
    /// undeclared types.
    pub fn typed_neighbors(
        &self,
        v: Vertex,
        neighbor_ty: VertexTypeId,
    ) -> Result<&[u32], GraphError> {
        let count = self.vertex_count(v.ty)?;
        if v.id.raw() >= count {
            return Err(GraphError::VertexOutOfRange { vertex: v, count });
        }
        self.vertex_count(neighbor_ty)?;
        Ok(self
            .adjacency
            .get(&(v.ty, neighbor_ty))
            .map(|csr| csr.neighbors(v.id))
            .unwrap_or(&[]))
    }

    /// Degree of `v` restricted to neighbors of `neighbor_ty`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HeteroGraph::typed_neighbors`].
    pub fn typed_degree(&self, v: Vertex, neighbor_ty: VertexTypeId) -> Result<usize, GraphError> {
        Ok(self.typed_neighbors(v, neighbor_ty)?.len())
    }

    /// The directed CSR from `src` type to `dst` type, if any edges
    /// exist between them.
    pub fn relation_csr(&self, src: VertexTypeId, dst: VertexTypeId) -> Option<&Csr> {
        self.adjacency.get(&(src, dst))
    }

    /// Iterates over the vertices of one type.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertexType`] for undeclared types.
    pub fn vertices(
        &self,
        ty: VertexTypeId,
    ) -> Result<impl Iterator<Item = Vertex> + '_, GraphError> {
        let count = self.vertex_count(ty)?;
        Ok((0..count).map(move |i| Vertex::new(ty, VertexId::new(i))))
    }

    /// Bytes required to store the topology (all CSRs), the quantity the
    /// paper's Table 1 calls "graph data".
    pub fn topology_bytes(&self) -> usize {
        self.adjacency.values().map(Csr::byte_size).sum()
    }

    /// Bytes required to store raw vertex features (`f32` per dim), per
    /// the schema's declared feature dimensions.
    pub fn raw_feature_bytes(&self) -> usize {
        self.schema
            .vertex_types()
            .map(|(ty, decl)| self.vertex_counts[ty.index()] as usize * decl.feature_dim * 4)
            .sum()
    }

    /// Returns a [`HeteroGraphBuilder`] pre-populated with this graph's
    /// contents, for applying batch updates.
    pub fn to_builder(&self) -> HeteroGraphBuilder {
        let mut b = HeteroGraphBuilder::new(self.schema.clone());
        for (ty, _) in self.schema.vertex_types() {
            b.set_vertex_count(ty, self.vertex_counts[ty.index()]);
        }
        for (&(src, dst), csr) in &self.adjacency {
            // Add each undirected edge once (from the canonical
            // direction) to avoid duplication.
            let rel = Relation::new(src, dst);
            let canonical = src == rel.lo();
            if canonical {
                for (s, t) in csr.iter_edges() {
                    b.add_edge(Vertex::new(src, s), Vertex::new(dst, t))
                        .expect("edges of a valid graph remain valid");
                }
            }
        }
        b
    }
}

/// Builder for [`HeteroGraph`].
///
/// ```
/// use hetgraph::{GraphSchema, HeteroGraphBuilder, Vertex, VertexId};
/// let mut schema = GraphSchema::new();
/// let a = schema.add_vertex_type("Author", 'A', 8);
/// let p = schema.add_vertex_type("Paper", 'P', 8);
/// schema.add_relation(a, p);
///
/// let mut b = HeteroGraphBuilder::new(schema);
/// b.set_vertex_count(a, 2);
/// b.set_vertex_count(p, 1);
/// b.add_edge(Vertex::new(a, VertexId::new(0)), Vertex::new(p, VertexId::new(0)))?;
/// let g = b.finish();
/// assert_eq!(g.total_edge_count(), 1);
/// # Ok::<(), hetgraph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HeteroGraphBuilder {
    schema: GraphSchema,
    vertex_counts: Vec<u32>,
    edges: BTreeMap<Relation, Vec<(Vertex, Vertex)>>,
}

impl HeteroGraphBuilder {
    /// Creates an empty builder over a schema.
    pub fn new(schema: GraphSchema) -> Self {
        let n = schema.vertex_type_count();
        HeteroGraphBuilder {
            schema,
            vertex_counts: vec![0; n],
            edges: BTreeMap::new(),
        }
    }

    /// Sets the number of vertices of a type.
    ///
    /// # Panics
    ///
    /// Panics if the type is not declared in the schema.
    pub fn set_vertex_count(&mut self, ty: VertexTypeId, count: u32) -> &mut Self {
        assert!(
            ty.index() < self.vertex_counts.len(),
            "vertex type {ty} not declared in schema"
        );
        self.vertex_counts[ty.index()] = count;
        self
    }

    /// Adds an undirected edge between two vertices.
    ///
    /// Duplicate edges are tolerated and removed at [`finish`] time.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownRelation`] if the schema does not
    /// declare the relation, [`GraphError::VertexOutOfRange`] if an
    /// endpoint id exceeds its type's vertex count, or
    /// [`GraphError::SelfLoop`] if both endpoints are the same vertex.
    ///
    /// [`finish`]: HeteroGraphBuilder::finish
    pub fn add_edge(&mut self, a: Vertex, b: Vertex) -> Result<&mut Self, GraphError> {
        let rel = Relation::new(a.ty, b.ty);
        if !self.schema.has_relation(rel) {
            return Err(GraphError::UnknownRelation(rel));
        }
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        for v in [a, b] {
            let count = self
                .vertex_counts
                .get(v.ty.index())
                .copied()
                .ok_or(GraphError::UnknownVertexType(v.ty))?;
            if v.id.raw() >= count {
                return Err(GraphError::VertexOutOfRange { vertex: v, count });
            }
        }
        self.edges.entry(rel).or_default().push((a, b));
        Ok(self)
    }

    /// Number of undirected edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    /// Like [`finish`], but rejects duplicate edges instead of
    /// silently deduplicating them.
    ///
    /// Use this when the edge list comes from an external source (a
    /// file, a user) where a repeated edge signals corrupt input
    /// rather than a convenience the generator relies on.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateEdge`] naming the first edge
    /// that appears more than once (in canonical lo-hi orientation).
    ///
    /// [`finish`]: HeteroGraphBuilder::finish
    pub fn finish_checked(self) -> Result<HeteroGraph, GraphError> {
        for pairs in self.edges.values() {
            let mut seen = BTreeSet::new();
            for &(a, b) in pairs {
                let key = if b < a { (b, a) } else { (a, b) };
                if !seen.insert(key) {
                    return Err(GraphError::DuplicateEdge { a: key.0, b: key.1 });
                }
            }
        }
        Ok(self.finish())
    }

    /// Finalizes the graph, materializing both CSR directions of every
    /// relation.
    ///
    /// Duplicate edges are removed; the reported edge counts reflect
    /// the deduplicated simple graph.
    pub fn finish(self) -> HeteroGraph {
        let mut adjacency: BTreeMap<(VertexTypeId, VertexTypeId), Csr> = BTreeMap::new();
        let mut edge_counts = BTreeMap::new();
        for (rel, pairs) in &self.edges {
            let (lo, hi) = (rel.lo(), rel.hi());
            if lo == hi {
                // Self-relation (e.g. Paper-Paper): one CSR with both
                // directions folded in. Self-loops were rejected at
                // insertion, so every edge contributes two entries.
                let mut b = CsrBuilder::new(self.vertex_counts[lo.index()] as usize);
                for &(a, bv) in pairs {
                    b.push(a.id, bv.id);
                    b.push(bv.id, a.id);
                }
                let csr = b.finish();
                edge_counts.insert(*rel, csr.edge_count() / 2);
                adjacency.insert((lo, lo), csr);
            } else {
                let mut fwd = CsrBuilder::new(self.vertex_counts[lo.index()] as usize);
                let mut rev = CsrBuilder::new(self.vertex_counts[hi.index()] as usize);
                for &(a, bv) in pairs {
                    let (l, h) = if a.ty == lo { (a, bv) } else { (bv, a) };
                    fwd.push(l.id, h.id);
                    rev.push(h.id, l.id);
                }
                let fwd = fwd.finish();
                edge_counts.insert(*rel, fwd.edge_count());
                adjacency.insert((lo, hi), fwd);
                adjacency.insert((hi, lo), rev.finish());
            }
        }
        HeteroGraph {
            schema: self.schema,
            vertex_counts: self.vertex_counts,
            adjacency,
            edge_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HeteroGraph {
        // The Figure 6(a) example: types A, B; A-B edges.
        // A vertices: 2, 4, 7 -> local ids 0, 1, 2
        // B vertices: 1, 3, 6 -> local ids 0, 1, 2
        // Edges: 2-1, 2-3, 4-1, 4-3, 7-3, 7-6 (from the figure).
        let mut schema = GraphSchema::new();
        let a = schema.add_vertex_type("A", 'A', 4);
        let b = schema.add_vertex_type("B", 'B', 4);
        schema.add_relation(a, b);
        let mut builder = HeteroGraphBuilder::new(schema);
        builder.set_vertex_count(a, 3);
        builder.set_vertex_count(b, 3);
        let va = |i| Vertex::new(a, VertexId::new(i));
        let vb = |i| Vertex::new(b, VertexId::new(i));
        for (x, y) in [(0, 0), (0, 1), (1, 0), (1, 1), (2, 1), (2, 2)] {
            builder.add_edge(va(x), vb(y)).unwrap();
        }
        builder.finish()
    }

    #[test]
    fn counts() {
        let g = tiny();
        assert_eq!(g.total_vertex_count(), 6);
        assert_eq!(g.total_edge_count(), 6);
    }

    #[test]
    fn typed_neighbors_both_directions() {
        let g = tiny();
        let a = g.schema().type_by_mnemonic('A').unwrap();
        let b = g.schema().type_by_mnemonic('B').unwrap();
        // B vertex 1 (paper's vertex 3) has A-neighbors {0, 1, 2}.
        assert_eq!(
            g.typed_neighbors(Vertex::new(b, VertexId::new(1)), a)
                .unwrap(),
            &[0, 1, 2]
        );
        // A vertex 0 (paper's vertex 2) has B-neighbors {0, 1}.
        assert_eq!(
            g.typed_neighbors(Vertex::new(a, VertexId::new(0)), b)
                .unwrap(),
            &[0, 1]
        );
    }

    #[test]
    fn missing_relation_yields_empty_slice() {
        let g = tiny();
        let a = g.schema().type_by_mnemonic('A').unwrap();
        // A-A has no declared edges: neighbor query is an error only if
        // the type is unknown; empty otherwise. A-A is undeclared but
        // both types exist, so the slice is empty.
        assert_eq!(
            g.typed_neighbors(Vertex::new(a, VertexId::new(0)), a)
                .unwrap(),
            &[] as &[u32]
        );
    }

    #[test]
    fn out_of_range_vertex_is_error() {
        let g = tiny();
        let a = g.schema().type_by_mnemonic('A').unwrap();
        let b = g.schema().type_by_mnemonic('B').unwrap();
        let err = g
            .typed_neighbors(Vertex::new(a, VertexId::new(99)), b)
            .unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn finish_checked_rejects_duplicate_edges() {
        let mut schema = GraphSchema::new();
        let a = schema.add_vertex_type("A", 'A', 4);
        let b = schema.add_vertex_type("B", 'B', 4);
        schema.add_relation(a, b);
        let mut builder = HeteroGraphBuilder::new(schema);
        builder.set_vertex_count(a, 2);
        builder.set_vertex_count(b, 2);
        let va = |i| Vertex::new(a, VertexId::new(i));
        let vb = |i| Vertex::new(b, VertexId::new(i));
        builder.add_edge(va(0), vb(0)).unwrap();
        builder.add_edge(va(0), vb(1)).unwrap();
        // Same edge, opposite orientation: still a duplicate.
        builder.add_edge(vb(0), va(0)).unwrap();
        let err = builder.finish_checked().unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }), "{err}");
    }

    #[test]
    fn finish_checked_accepts_simple_graphs() {
        let mut schema = GraphSchema::new();
        let a = schema.add_vertex_type("A", 'A', 4);
        let b = schema.add_vertex_type("B", 'B', 4);
        schema.add_relation(a, b);
        let mut builder = HeteroGraphBuilder::new(schema);
        builder.set_vertex_count(a, 2);
        builder.set_vertex_count(b, 2);
        for (x, y) in [(0, 0), (0, 1), (1, 0)] {
            builder
                .add_edge(
                    Vertex::new(a, VertexId::new(x)),
                    Vertex::new(b, VertexId::new(y)),
                )
                .unwrap();
        }
        let g = builder.finish_checked().unwrap();
        assert_eq!(g.total_edge_count(), 3);
    }

    #[test]
    fn builder_rejects_undeclared_relation() {
        let mut schema = GraphSchema::new();
        let a = schema.add_vertex_type("A", 'A', 4);
        let b = schema.add_vertex_type("B", 'B', 4);
        // No relation declared.
        let mut builder = HeteroGraphBuilder::new(schema);
        builder.set_vertex_count(a, 1);
        builder.set_vertex_count(b, 1);
        let err = builder
            .add_edge(
                Vertex::new(a, VertexId::new(0)),
                Vertex::new(b, VertexId::new(0)),
            )
            .unwrap_err();
        assert!(matches!(err, GraphError::UnknownRelation(_)));
    }

    #[test]
    fn self_relation_roundtrip() {
        let mut schema = GraphSchema::new();
        let p = schema.add_vertex_type("Paper", 'P', 4);
        schema.add_relation(p, p);
        let mut builder = HeteroGraphBuilder::new(schema);
        builder.set_vertex_count(p, 3);
        builder
            .add_edge(
                Vertex::new(p, VertexId::new(0)),
                Vertex::new(p, VertexId::new(2)),
            )
            .unwrap();
        let g = builder.finish();
        assert_eq!(
            g.typed_neighbors(Vertex::new(p, VertexId::new(0)), p)
                .unwrap(),
            &[2]
        );
        assert_eq!(
            g.typed_neighbors(Vertex::new(p, VertexId::new(2)), p)
                .unwrap(),
            &[0]
        );
    }

    #[test]
    fn to_builder_roundtrip_preserves_counts() {
        let g = tiny();
        let g2 = g.to_builder().finish();
        assert_eq!(g2.total_vertex_count(), g.total_vertex_count());
        assert_eq!(g2.total_edge_count(), g.total_edge_count());
        let a = g.schema().type_by_mnemonic('A').unwrap();
        let b = g.schema().type_by_mnemonic('B').unwrap();
        for i in 0..3 {
            assert_eq!(
                g2.typed_neighbors(Vertex::new(b, VertexId::new(i)), a)
                    .unwrap(),
                g.typed_neighbors(Vertex::new(b, VertexId::new(i)), a)
                    .unwrap()
            );
        }
    }

    #[test]
    fn topology_bytes_positive() {
        let g = tiny();
        assert!(g.topology_bytes() > 0);
        assert!(g.raw_feature_bytes() > 0);
    }
}

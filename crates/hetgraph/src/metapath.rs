//! Metapaths: ordered sequences of vertex types.
//!
//! A metapath `P = V1 → V2 → … → V(L+1)` (§2.1) describes a composite
//! relation; its *instances* are concrete paths in the graph whose
//! vertex types match the sequence. Metapaths are written in the paper's
//! compact mnemonic notation, e.g. `"APCPA"` for
//! Author-Paper-Conference-Paper-Author.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::schema::GraphSchema;
use crate::types::{Relation, VertexTypeId};

/// An ordered sequence of at least two vertex types.
///
/// ```
/// use hetgraph::{GraphSchema, Metapath};
/// let mut s = GraphSchema::new();
/// let a = s.add_vertex_type("Author", 'A', 8);
/// let p = s.add_vertex_type("Paper", 'P', 8);
/// s.add_relation(a, p);
/// let mp = Metapath::parse("APA", &s)?;
/// assert_eq!(mp.length(), 2); // number of hops
/// assert_eq!(mp.vertex_types(), &[a, p, a]);
/// # Ok::<(), hetgraph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Metapath {
    types: Vec<VertexTypeId>,
    name: String,
}

impl Metapath {
    /// Builds a metapath from an explicit type sequence, validating it
    /// against the schema.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MetapathTooShort`] for sequences of fewer
    /// than two types, and [`GraphError::MetapathUnknownRelation`] if a
    /// consecutive pair has no declared relation.
    pub fn from_types(types: Vec<VertexTypeId>, schema: &GraphSchema) -> Result<Self, GraphError> {
        if types.len() < 2 {
            return Err(GraphError::MetapathTooShort(types.len()));
        }
        for (hop, w) in types.windows(2).enumerate() {
            let rel = Relation::new(w[0], w[1]);
            if !schema.has_relation(rel) {
                return Err(GraphError::MetapathUnknownRelation { hop, relation: rel });
            }
        }
        let name: String = types
            .iter()
            .map(|&t| {
                schema
                    .vertex_type(t)
                    .map(|d| d.mnemonic)
                    .expect("types validated above")
            })
            .collect();
        Ok(Metapath { types, name })
    }

    /// Parses the compact mnemonic notation, e.g. `"APCPA"`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertexTypeName`] for unknown
    /// mnemonics plus the conditions of [`Metapath::from_types`].
    pub fn parse(text: &str, schema: &GraphSchema) -> Result<Self, GraphError> {
        let types = text
            .chars()
            .map(|c| schema.type_by_mnemonic(c))
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_types(types, schema)
    }

    /// The vertex-type sequence (`L + 1` entries).
    pub fn vertex_types(&self) -> &[VertexTypeId] {
        &self.types
    }

    /// The metapath length `L` — the number of hops (edges).
    pub fn length(&self) -> usize {
        self.types.len() - 1
    }

    /// Number of vertices in an instance (`L + 1`).
    pub fn vertex_count(&self) -> usize {
        self.types.len()
    }

    /// The mnemonic name, e.g. `"APA"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The type of the starting vertex (instances *belong* to vertices
    /// of this type, §3.2).
    pub fn start_type(&self) -> VertexTypeId {
        self.types[0]
    }

    /// The type of the terminal vertex (HAN's "metapath-based
    /// neighbor" type).
    pub fn end_type(&self) -> VertexTypeId {
        *self.types.last().expect("metapath has >= 2 types")
    }

    /// Returns `true` if the metapath is symmetric (reads the same
    /// forwards and backwards), like `APA` or `APCPA`.
    pub fn is_symmetric(&self) -> bool {
        let n = self.types.len();
        (0..n / 2).all(|i| self.types[i] == self.types[n - 1 - i])
    }

    /// The relations crossed hop by hop.
    pub fn relations(&self) -> Vec<Relation> {
        self.types
            .windows(2)
            .map(|w| Relation::new(w[0], w[1]))
            .collect()
    }
}

impl fmt::Display for Metapath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> GraphSchema {
        let mut s = GraphSchema::new();
        let a = s.add_vertex_type("Author", 'A', 8);
        let p = s.add_vertex_type("Paper", 'P', 8);
        let c = s.add_vertex_type("Conference", 'C', 8);
        s.add_relation(a, p);
        s.add_relation(p, c);
        s
    }

    #[test]
    fn parse_apa() {
        let s = schema();
        let mp = Metapath::parse("APA", &s).unwrap();
        assert_eq!(mp.length(), 2);
        assert_eq!(mp.vertex_count(), 3);
        assert_eq!(mp.name(), "APA");
        assert!(mp.is_symmetric());
        assert_eq!(mp.start_type(), mp.end_type());
    }

    #[test]
    fn parse_apcpa() {
        let s = schema();
        let mp = Metapath::parse("APCPA", &s).unwrap();
        assert_eq!(mp.length(), 4);
        assert!(mp.is_symmetric());
        assert_eq!(mp.relations().len(), 4);
    }

    #[test]
    fn asymmetric_metapath() {
        let s = schema();
        let mp = Metapath::parse("APC", &s).unwrap();
        assert!(!mp.is_symmetric());
        assert_ne!(mp.start_type(), mp.end_type());
    }

    #[test]
    fn too_short_is_error() {
        let s = schema();
        assert!(matches!(
            Metapath::parse("A", &s),
            Err(GraphError::MetapathTooShort(1))
        ));
    }

    #[test]
    fn unknown_mnemonic_is_error() {
        let s = schema();
        assert!(matches!(
            Metapath::parse("AXA", &s),
            Err(GraphError::UnknownVertexTypeName(_))
        ));
    }

    #[test]
    fn missing_relation_is_error() {
        let s = schema();
        // A-C has no declared relation.
        let err = Metapath::parse("ACA", &s).unwrap_err();
        assert!(matches!(
            err,
            GraphError::MetapathUnknownRelation { hop: 0, .. }
        ));
    }

    #[test]
    fn display_matches_name() {
        let s = schema();
        let mp = Metapath::parse("APA", &s).unwrap();
        assert_eq!(mp.to_string(), "APA");
    }
}

//! Metapath instance enumeration, counting, and memory accounting.
//!
//! The conventional HGNN pipeline *materializes* every metapath instance
//! during pre-processing and keeps the list in memory for structural and
//! semantic aggregation — the paper measures this intermediate data at
//! 239.84× the graph itself on average (Table 1). This module implements
//! that baseline ([`MaterializedInstances`]), an exact closed-form
//! counter that never materializes ([`count_instances`]), and the
//! byte-level accounting behind Tables 1 and 4.
//!
//! Instances are *walks*: the same vertex may appear several times (the
//! paper's Figure 6 counts `②-①-②` as a valid A-B-A instance).

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::graph::HeteroGraph;
use crate::metapath::Metapath;
use crate::types::{Vertex, VertexId};

/// All instances of one metapath, stored as a flat row-major matrix of
/// local vertex ids with stride `metapath.vertex_count()`.
///
/// This is the baseline's intermediate data structure; its size is what
/// MetaNMP eliminates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaterializedInstances {
    stride: usize,
    data: Vec<u32>,
    truncated: bool,
}

impl MaterializedInstances {
    /// Number of stored instances.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.stride).unwrap_or(0)
    }

    /// Returns `true` if no instances were found.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vertices per instance (`L + 1`).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// `true` if enumeration stopped at the caller-provided cap, so the
    /// list is incomplete.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// The `i`-th instance as a slice of local vertex ids.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn instance(&self, i: usize) -> &[u32] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// Iterates over instances.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.data.chunks_exact(self.stride.max(1))
    }

    /// Bytes used to store the instance list (`4 × stride` per
    /// instance) — the paper's "Instances" row in Table 1.
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
    }
}

/// Enumerates every instance of `metapath` in `graph` by depth-first
/// expansion, stopping after `limit` instances.
///
/// The baseline pre-processing phase. Use [`count_instances`] when only
/// the count is needed — enumeration is exponential in metapath length.
///
/// # Errors
///
/// Propagates [`GraphError`] for vertices or types that fail
/// validation (cannot happen on graphs built by [`crate::HeteroGraphBuilder`]).
pub fn enumerate_instances(
    graph: &HeteroGraph,
    metapath: &Metapath,
    limit: usize,
) -> Result<MaterializedInstances, GraphError> {
    let types = metapath.vertex_types();
    let stride = types.len();
    let mut data = Vec::new();
    let mut truncated = false;
    let start_count = graph.vertex_count(metapath.start_type())?;

    let mut stack: Vec<u32> = Vec::with_capacity(stride);
    'outer: for s in 0..start_count {
        stack.clear();
        stack.push(s);
        // Iterative DFS with explicit neighbor cursors.
        let mut cursors: Vec<usize> = vec![0];
        loop {
            let depth = stack.len() - 1;
            if depth + 1 == stride {
                // Complete instance.
                if data.len() / stride >= limit {
                    truncated = true;
                    break 'outer;
                }
                data.extend_from_slice(&stack);
                stack.pop();
                cursors.pop();
                if stack.is_empty() {
                    break;
                }
                continue;
            }
            let v = Vertex::new(
                types[depth],
                VertexId::new(
                    *stack
                        .last()
                        .expect("DFS stack is non-empty inside the loop"),
                ),
            );
            let neighbors = graph.typed_neighbors(v, types[depth + 1])?;
            let cursor = cursors
                .last_mut()
                .expect("cursor stack mirrors the DFS stack");
            if *cursor < neighbors.len() {
                let next = neighbors[*cursor];
                *cursor += 1;
                stack.push(next);
                cursors.push(0);
            } else {
                stack.pop();
                cursors.pop();
                if stack.is_empty() {
                    break;
                }
            }
        }
    }
    Ok(MaterializedInstances {
        stride,
        data,
        truncated,
    })
}

/// Counts instances of `metapath` exactly, without materializing, via
/// forward dynamic programming over walk counts.
///
/// Runs in `O(L × E)` time and `O(V)` space, so it is safe on the
/// web-scale presets where enumeration would need tens of gigabytes.
///
/// # Errors
///
/// Propagates [`GraphError`] from neighbor queries.
pub fn count_instances(graph: &HeteroGraph, metapath: &Metapath) -> Result<u128, GraphError> {
    let per_start = count_instances_per_start(graph, metapath)?;
    Ok(per_start.iter().sum())
}

/// Counts, for every start vertex, the number of instances dispersing
/// from it (the paper's per-vertex instance fan-out), via backward DP.
///
/// # Errors
///
/// Propagates [`GraphError`] from neighbor queries.
pub fn count_instances_per_start(
    graph: &HeteroGraph,
    metapath: &Metapath,
) -> Result<Vec<u128>, GraphError> {
    let types = metapath.vertex_types();
    let last = types.len() - 1;
    let mut suffix: Vec<u128> = vec![1; graph.vertex_count(types[last])? as usize];
    for depth in (0..last).rev() {
        let ty = types[depth];
        let next_ty = types[depth + 1];
        let count = graph.vertex_count(ty)? as usize;
        let mut cur = vec![0u128; count];
        for (i, slot) in cur.iter_mut().enumerate() {
            let v = Vertex::new(ty, VertexId::new(i as u32));
            for &n in graph.typed_neighbors(v, next_ty)? {
                *slot += suffix[n as usize];
            }
        }
        suffix = cur;
    }
    Ok(suffix)
}

/// Counts the nodes of the dependency (prefix) tree rooted at each start
/// vertex, summed over all start vertices, *excluding* the roots.
///
/// A prefix-tree node at depth `d ≥ 1` is a distinct walk
/// `v0 … vd`; the reuse-aware dataflow (§3.2) performs exactly one
/// aggregation per such node, so this count is the optimized structural
/// aggregation work and also SHGNN's tree storage size.
///
/// # Errors
///
/// Propagates [`GraphError`] from neighbor queries.
pub fn count_prefix_nodes(graph: &HeteroGraph, metapath: &Metapath) -> Result<u128, GraphError> {
    let types = metapath.vertex_types();
    let mut total: u128 = 0;
    // Forward DP: walks of each prefix length.
    let start = graph.vertex_count(types[0])? as usize;
    let mut cur: Vec<u128> = vec![1; start];
    for depth in 1..types.len() {
        let prev_ty = types[depth - 1];
        let ty = types[depth];
        let count = graph.vertex_count(ty)? as usize;
        let mut next = vec![0u128; count];
        for (i, &walks) in cur.iter().enumerate() {
            if walks == 0 {
                continue;
            }
            let v = Vertex::new(prev_ty, VertexId::new(i as u32));
            for &n in graph.typed_neighbors(v, ty)? {
                next[n as usize] += walks;
            }
        }
        total += next.iter().sum::<u128>();
        cur = next;
    }
    Ok(total)
}

/// Forward walk counts per metapath level: entry `i` holds, for every
/// vertex of type `types[i]`, the number of distinct walks
/// `v0 … vi` (matching the metapath prefix) that end at it. Level 0 is
/// all ones.
///
/// Used by the NMP distribution model to know which vertices hold
/// partial instances at each extension hop.
///
/// # Errors
///
/// Propagates [`GraphError`] from neighbor queries.
pub fn walk_counts_per_level(
    graph: &HeteroGraph,
    metapath: &Metapath,
) -> Result<Vec<Vec<u128>>, GraphError> {
    let types = metapath.vertex_types();
    let mut levels = Vec::with_capacity(types.len());
    let start = graph.vertex_count(types[0])? as usize;
    levels.push(vec![1u128; start]);
    for depth in 1..types.len() {
        let prev_ty = types[depth - 1];
        let ty = types[depth];
        let count = graph.vertex_count(ty)? as usize;
        let mut next = vec![0u128; count];
        let prev = &levels[depth - 1];
        for (i, &walks) in prev.iter().enumerate() {
            if walks == 0 {
                continue;
            }
            let v = Vertex::new(prev_ty, VertexId::new(i as u32));
            for &n in graph.typed_neighbors(v, ty)? {
                next[n as usize] += walks;
            }
        }
        levels.push(next);
    }
    Ok(levels)
}

/// How a baseline HGNN model stores materialized instances, which
/// determines the intermediate-data bytes MetaNMP eliminates (Table 4's
/// per-model columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceStorage {
    /// Full vertex sequence per instance (MAGNN aggregates every vertex
    /// inside the instance): `4 × (L+1)` bytes per instance, plus one
    /// intermediate result vector per instance.
    FullPath,
    /// Only the endpoint pair per instance (HAN aggregates
    /// metapath-based neighbors): `8` bytes per instance, no
    /// per-instance intermediate vector.
    Endpoints,
    /// Prefix-tree (SHGNN builds explicit tree structures): `8` bytes
    /// per tree node plus one intermediate vector per tree node.
    PrefixTree,
}

/// Memory accounting for one (graph, metapath, storage model)
/// combination; all sizes in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceMemory {
    /// Bytes of instance topology (paths / endpoints / tree nodes).
    pub structure_bytes: u128,
    /// Bytes of per-instance (or per-node) intermediate feature vectors
    /// the baseline must keep live during structural aggregation.
    pub intermediate_bytes: u128,
    /// Number of instances counted.
    pub instance_count: u128,
}

impl InstanceMemory {
    /// Total intermediate bytes the baseline holds.
    pub fn total(&self) -> u128 {
        self.structure_bytes + self.intermediate_bytes
    }
}

/// Computes the baseline instance memory for a storage model, with
/// `hidden_dim` the projected feature dimension used for intermediate
/// vectors.
///
/// # Errors
///
/// Propagates [`GraphError`] from the instance counters.
pub fn instance_memory(
    graph: &HeteroGraph,
    metapath: &Metapath,
    storage: InstanceStorage,
    hidden_dim: usize,
) -> Result<InstanceMemory, GraphError> {
    let instances = count_instances(graph, metapath)?;
    let vec_bytes = 4u128 * hidden_dim as u128;
    let (structure, intermediate) = match storage {
        InstanceStorage::FullPath => (
            instances * 4 * metapath.vertex_count() as u128,
            instances * vec_bytes,
        ),
        InstanceStorage::Endpoints => (instances * 8, 0),
        InstanceStorage::PrefixTree => {
            let nodes = count_prefix_nodes(graph, metapath)?;
            (nodes * 8, nodes * vec_bytes)
        }
    };
    Ok(InstanceMemory {
        structure_bytes: structure,
        intermediate_bytes: intermediate,
        instance_count: instances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HeteroGraphBuilder;
    use crate::schema::GraphSchema;
    use crate::types::VertexTypeId;

    /// The Figure 6(a) graph. A = {2,4,7} -> ids {0,1,2};
    /// B = {1,3,6} -> ids {0,1,2}. Edges per the figure give 14 A-B-A
    /// instances in total and 5 starting at vertex ② (A id 0).
    fn figure6() -> (HeteroGraph, Metapath) {
        let mut schema = GraphSchema::new();
        let a = schema.add_vertex_type("A", 'A', 4);
        let b = schema.add_vertex_type("B", 'B', 4);
        schema.add_relation(a, b);
        let mut builder = HeteroGraphBuilder::new(schema);
        builder.set_vertex_count(a, 3);
        builder.set_vertex_count(b, 3);
        let va = |i| Vertex::new(a, VertexId::new(i));
        let vb = |i| Vertex::new(b, VertexId::new(i));
        // ①: neighbors {②,④}; ③: neighbors {②,④,⑦}; ⑥: neighbors {⑦}.
        for (x, y) in [(0, 0), (1, 0), (0, 1), (1, 1), (2, 1), (2, 2)] {
            builder.add_edge(va(x), vb(y)).unwrap();
        }
        let g = builder.finish();
        let mp = Metapath::parse("ABA", g.schema()).unwrap();
        (g, mp)
    }

    #[test]
    fn figure6_total_instance_count_is_14() {
        let (g, mp) = figure6();
        assert_eq!(count_instances(&g, &mp).unwrap(), 14);
    }

    #[test]
    fn figure6_instances_from_vertex2_is_5() {
        let (g, mp) = figure6();
        let per_start = count_instances_per_start(&g, &mp).unwrap();
        assert_eq!(per_start[0], 5); // vertex ② = A id 0
        assert_eq!(per_start.iter().sum::<u128>(), 14);
    }

    #[test]
    fn enumeration_matches_count() {
        let (g, mp) = figure6();
        let e = enumerate_instances(&g, &mp, usize::MAX).unwrap();
        assert_eq!(e.len(), 14);
        assert!(!e.is_truncated());
        assert_eq!(e.stride(), 3);
        // Every instance respects adjacency.
        let a = g.schema().type_by_mnemonic('A').unwrap();
        let b = g.schema().type_by_mnemonic('B').unwrap();
        for inst in e.iter() {
            let left = Vertex::new(a, VertexId::new(inst[0]));
            let right = Vertex::new(a, VertexId::new(inst[2]));
            assert!(g.typed_neighbors(left, b).unwrap().contains(&inst[1]));
            assert!(g.typed_neighbors(right, b).unwrap().contains(&inst[1]));
        }
    }

    #[test]
    fn enumeration_respects_limit() {
        let (g, mp) = figure6();
        let e = enumerate_instances(&g, &mp, 3).unwrap();
        assert_eq!(e.len(), 3);
        assert!(e.is_truncated());
    }

    #[test]
    fn byte_size_is_stride_times_count_times_4() {
        let (g, mp) = figure6();
        let e = enumerate_instances(&g, &mp, usize::MAX).unwrap();
        assert_eq!(e.byte_size(), 14 * 3 * 4);
    }

    #[test]
    fn prefix_nodes_less_than_naive_vertex_touches() {
        let (g, mp) = figure6();
        let nodes = count_prefix_nodes(&g, &mp).unwrap();
        let naive: u128 = count_instances(&g, &mp).unwrap() * mp.length() as u128;
        // Sharing must strictly reduce work on this graph.
        assert!(nodes < naive, "{nodes} >= {naive}");
    }

    #[test]
    fn storage_models_order_as_expected() {
        let (g, mp) = figure6();
        let full = instance_memory(&g, &mp, InstanceStorage::FullPath, 64).unwrap();
        let ends = instance_memory(&g, &mp, InstanceStorage::Endpoints, 64).unwrap();
        let tree = instance_memory(&g, &mp, InstanceStorage::PrefixTree, 64).unwrap();
        assert!(full.total() > ends.total());
        assert!(tree.total() > ends.total());
        assert_eq!(full.instance_count, 14);
    }

    #[test]
    fn unknown_type_propagates_error() {
        let (g, _) = figure6();
        // Build a metapath against a *different* schema with more types,
        // so validation inside the graph fails.
        let mut schema2 = GraphSchema::new();
        let a = schema2.add_vertex_type("A", 'A', 4);
        let b = schema2.add_vertex_type("B", 'B', 4);
        let c = schema2.add_vertex_type("C", 'C', 4);
        schema2.add_relation(a, b);
        schema2.add_relation(b, c);
        let mp = Metapath::parse("ABC", &schema2).unwrap();
        assert!(count_instances(&g, &mp).is_err());
    }

    #[test]
    fn empty_graph_has_zero_instances() {
        let mut schema = GraphSchema::new();
        let a = schema.add_vertex_type("A", 'A', 4);
        let b = schema.add_vertex_type("B", 'B', 4);
        schema.add_relation(a, b);
        let mut builder = HeteroGraphBuilder::new(schema);
        builder.set_vertex_count(a, 5);
        builder.set_vertex_count(b, 5);
        let g = builder.finish();
        let mp = Metapath::parse("ABA", g.schema()).unwrap();
        assert_eq!(count_instances(&g, &mp).unwrap(), 0);
        assert_eq!(enumerate_instances(&g, &mp, 10).unwrap().len(), 0);
    }

    #[test]
    fn type_ids_stable() {
        let (g, _) = figure6();
        assert_eq!(
            g.schema().type_by_mnemonic('A').unwrap(),
            VertexTypeId::new(0)
        );
    }
}

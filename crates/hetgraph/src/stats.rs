//! Graph statistics: degree distributions and per-relation summaries.
//!
//! Used by the experiment harness to report the generated datasets
//! (the reproduction's analogue of Table 3) and to sanity-check that
//! the synthetic generators produce the heavy-tailed fan-out that
//! drives metapath-instance explosion.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::graph::HeteroGraph;
use crate::types::{Vertex, VertexId, VertexTypeId};

/// Summary statistics of one directed typed degree distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of source vertices.
    pub vertices: u64,
    /// Total directed edges.
    pub edges: u64,
    /// Mean degree.
    pub mean: f64,
    /// Maximum degree.
    pub max: u64,
    /// Fraction of vertices with zero degree.
    pub isolated_fraction: f64,
    /// Gini-style skew indicator: fraction of edges owned by the top
    /// 1% highest-degree vertices.
    pub top1pct_edge_share: f64,
}

/// Computes degree statistics for the directed relation
/// `src → neighbor_ty`.
///
/// # Errors
///
/// Propagates [`GraphError`] for unknown types.
pub fn degree_stats(
    graph: &HeteroGraph,
    src: VertexTypeId,
    neighbor_ty: VertexTypeId,
) -> Result<DegreeStats, GraphError> {
    let n = graph.vertex_count(src)? as usize;
    let mut degrees = Vec::with_capacity(n);
    for i in 0..n {
        let v = Vertex::new(src, VertexId::new(i as u32));
        degrees.push(graph.typed_neighbors(v, neighbor_ty)?.len() as u64);
    }
    let edges: u64 = degrees.iter().sum();
    let isolated = degrees.iter().filter(|&&d| d == 0).count();
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    let top = (n / 100).max(1).min(n.max(1));
    let top_edges: u64 = degrees.iter().take(top).sum();
    Ok(DegreeStats {
        vertices: n as u64,
        edges,
        mean: if n == 0 { 0.0 } else { edges as f64 / n as f64 },
        max: degrees.first().copied().unwrap_or(0),
        isolated_fraction: if n == 0 {
            0.0
        } else {
            isolated as f64 / n as f64
        },
        top1pct_edge_share: if edges == 0 {
            0.0
        } else {
            top_edges as f64 / edges as f64
        },
    })
}

/// A whole-graph summary: every directed typed relation with edges.
///
/// # Errors
///
/// Propagates [`GraphError`] from degree computation.
pub fn summarize(
    graph: &HeteroGraph,
) -> Result<Vec<(VertexTypeId, VertexTypeId, DegreeStats)>, GraphError> {
    let mut out = Vec::new();
    let types: Vec<VertexTypeId> = graph.schema().vertex_types().map(|(t, _)| t).collect();
    for &src in &types {
        for &dst in &types {
            if graph.relation_csr(src, dst).is_some() {
                out.push((src, dst, degree_stats(graph, src, dst)?));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{generate, DatasetId, GeneratorConfig};

    #[test]
    fn stats_are_consistent_with_graph() {
        let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.1));
        let s = ds.graph.schema();
        let m = s.type_by_mnemonic('M').unwrap();
        let a = s.type_by_mnemonic('A').unwrap();
        let stats = degree_stats(&ds.graph, m, a).unwrap();
        assert_eq!(stats.vertices, ds.graph.vertex_count(m).unwrap() as u64);
        assert!(stats.mean > 0.0);
        assert!(stats.max >= stats.mean as u64);
        assert!(stats.top1pct_edge_share > 0.0 && stats.top1pct_edge_share <= 1.0);
    }

    #[test]
    fn skewed_generation_is_heavy_tailed() {
        let skewed = generate(
            DatasetId::Lastfm,
            GeneratorConfig {
                skew: 0.9,
                ..GeneratorConfig::at_scale(0.2)
            },
        );
        let uniform = generate(
            DatasetId::Lastfm,
            GeneratorConfig {
                skew: 0.0,
                ..GeneratorConfig::at_scale(0.2)
            },
        );
        let s = skewed.graph.schema();
        let u_ty = s.type_by_mnemonic('U').unwrap();
        let a_ty = s.type_by_mnemonic('A').unwrap();
        let sk = degree_stats(&skewed.graph, a_ty, u_ty).unwrap();
        let un = degree_stats(&uniform.graph, a_ty, u_ty).unwrap();
        assert!(
            sk.top1pct_edge_share > un.top1pct_edge_share,
            "skewed {} <= uniform {}",
            sk.top1pct_edge_share,
            un.top1pct_edge_share
        );
    }

    #[test]
    fn summarize_covers_all_relations() {
        let ds = generate(DatasetId::Dblp, GeneratorConfig::at_scale(0.05));
        let rows = summarize(&ds.graph).unwrap();
        // DBLP: A-P, P-T, P-V — both directions each = 6 rows.
        assert_eq!(rows.len(), 6);
        for (_, _, s) in rows {
            assert!(s.edges > 0);
        }
    }

    #[test]
    fn empty_relation_errors_gracefully() {
        let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.05));
        let s = ds.graph.schema();
        let d = s.type_by_mnemonic('D').unwrap();
        let a = s.type_by_mnemonic('A').unwrap();
        // D-A carries no edges: stats are all-zero, not an error.
        let st = degree_stats(&ds.graph, d, a).unwrap();
        assert_eq!(st.edges, 0);
        assert_eq!(st.isolated_fraction, 1.0);
    }
}

//! Heterogeneous graph substrate for the MetaNMP reproduction.
//!
//! This crate provides everything the rest of the workspace builds on:
//!
//! * typed graph storage with the paper's §4.1 *optimized layout*
//!   (per-relation CSRs so a vertex's neighbors of each type are a
//!   contiguous slice) — [`HeteroGraph`] / [`HeteroGraphBuilder`];
//! * [`Metapath`] parsing and validation;
//! * the baseline *materialize-everything* instance pipeline and exact
//!   closed-form instance counting — [`instances`];
//! * on-the-fly instance generation via cartesian-like products and the
//!   prefix-tree dependency walk that exposes shareable aggregation —
//!   [`cartesian`];
//! * seeded synthetic versions of the paper's five datasets
//!   ([Table 3]) — [`datasets`];
//! * batch graph updates for the dynamic-inference workload —
//!   [`update`].
//!
//! [Table 3]: datasets
//!
//! # Example
//!
//! Count the A-B-A instances of the paper's Figure 6 example graph and
//! verify the cartesian-like product finds the same 14 instances the
//! figure lists:
//!
//! ```
//! use hetgraph::{GraphSchema, HeteroGraphBuilder, Metapath, Vertex, VertexId};
//! use hetgraph::instances::count_instances;
//! use hetgraph::cartesian::{center_products, CenterProduct};
//!
//! let mut schema = GraphSchema::new();
//! let a = schema.add_vertex_type("A", 'A', 4);
//! let b = schema.add_vertex_type("B", 'B', 4);
//! schema.add_relation(a, b);
//!
//! let mut builder = HeteroGraphBuilder::new(schema);
//! builder.set_vertex_count(a, 3);
//! builder.set_vertex_count(b, 3);
//! for (x, y) in [(0, 0), (1, 0), (0, 1), (1, 1), (2, 1), (2, 2)] {
//!     builder.add_edge(
//!         Vertex::new(a, VertexId::new(x)),
//!         Vertex::new(b, VertexId::new(y)),
//!     )?;
//! }
//! let graph = builder.finish();
//! let metapath = Metapath::parse("ABA", graph.schema())?;
//!
//! assert_eq!(count_instances(&graph, &metapath)?, 14);
//! let via_products: usize = center_products(&graph, &metapath)?
//!     .iter()
//!     .map(CenterProduct::instance_count)
//!     .sum();
//! assert_eq!(via_products, 14);
//! # Ok::<(), hetgraph::GraphError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cartesian;
pub mod csr;
pub mod datasets;
mod error;
mod graph;
pub mod instances;
pub mod io;
mod metapath;
mod schema;
pub mod stats;
mod types;
pub mod update;

pub use error::GraphError;
pub use graph::{HeteroGraph, HeteroGraphBuilder};
pub use metapath::Metapath;
pub use schema::{GraphSchema, VertexTypeDecl};
pub use types::{EdgeTypeId, Relation, Vertex, VertexId, VertexTypeId};

//! Binary serialization of heterogeneous graphs and datasets.
//!
//! Generating the web-scale presets takes minutes; saving the generated
//! graph lets experiment runs and downstream users reload it in
//! seconds. The format (`HGB1`) is a simple length-prefixed binary
//! layout: schema, vertex counts, canonical-direction edge lists, and
//! (for datasets) the metapath names.

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

use crate::datasets::{Dataset, DatasetId};
use crate::graph::{HeteroGraph, HeteroGraphBuilder};
use crate::metapath::Metapath;
use crate::schema::GraphSchema;
use crate::types::{Vertex, VertexId};
use crate::GraphError;

const MAGIC: &[u8; 4] = b"HGB1";

/// Largest per-type vertex count a stream may declare (~67M).
///
/// The web-scale presets top out around a few million vertices per
/// type; the cap's job is to reject corrupted count fields before
/// [`CsrBuilder`](crate::csr::CsrBuilder) sizes per-vertex offset
/// arrays from them (a `u32::MAX` count would ask for tens of GiB).
const MAX_VERTEX_COUNT: u32 = 1 << 26;

/// Largest feature dimension a stream may declare.
const MAX_FEATURE_DIM: u64 = 1 << 20;

/// Largest relation count a stream may declare: every unordered pair
/// (including self-relations) of the 256 permitted vertex types.
const MAX_RELATIONS: u32 = 256 * 257 / 2;

/// Largest metapath count a dataset stream may declare.
const MAX_METAPATHS: u32 = 1 << 12;

/// Errors raised while reading or writing graph files.
#[derive(Debug)]
#[non_exhaustive]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not an `HGB1` file.
    BadMagic,
    /// The stream ended early or contained an invalid value.
    Malformed(String),
    /// Graph reconstruction failed.
    Graph(GraphError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::BadMagic => write!(f, "not an HGB1 graph file"),
            IoError::Malformed(why) => write!(f, "malformed graph file: {why}"),
            IoError::Graph(e) => write!(f, "graph reconstruction failed: {e}"),
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<(), IoError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<(), IoError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn write_str<W: Write>(w: &mut W, s: &str) -> Result<(), IoError> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, IoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, IoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_str<R: Read>(r: &mut R) -> Result<String, IoError> {
    let len = read_u32(r)? as usize;
    if len > (1 << 20) {
        return Err(IoError::Malformed(format!("string length {len} too large")));
    }
    let mut b = vec![0u8; len];
    r.read_exact(&mut b)?;
    String::from_utf8(b).map_err(|_| IoError::Malformed("invalid utf-8".into()))
}

/// Writes a graph to a writer; a mutable reference works as the writer.
///
/// # Errors
///
/// Propagates [`IoError::Io`] from the writer.
pub fn save_graph<W: Write>(graph: &HeteroGraph, mut w: W) -> Result<(), IoError> {
    w.write_all(MAGIC)?;
    let schema = graph.schema();
    write_u32(&mut w, schema.vertex_type_count() as u32)?;
    for (ty, decl) in schema.vertex_types() {
        write_str(&mut w, &decl.name)?;
        write_u32(&mut w, decl.mnemonic as u32)?;
        write_u64(&mut w, decl.feature_dim as u64)?;
        write_u32(&mut w, graph.vertex_count(ty)?)?;
    }
    let relations = schema.relations();
    write_u32(&mut w, relations.len() as u32)?;
    for rel in relations {
        write_u32(&mut w, rel.lo().index() as u32)?;
        write_u32(&mut w, rel.hi().index() as u32)?;
        // Canonical-direction edges (lo → hi); for self-relations the
        // CSR holds both directions, so keep only src <= dst.
        let csr = graph.relation_csr(rel.lo(), rel.hi());
        let edges: Vec<(u32, u32)> = match csr {
            None => Vec::new(),
            Some(csr) if rel.lo() == rel.hi() => csr
                .iter_edges()
                .filter(|(s, t)| s.raw() <= t.raw())
                .map(|(s, t)| (s.raw(), t.raw()))
                .collect(),
            Some(csr) => csr.iter_edges().map(|(s, t)| (s.raw(), t.raw())).collect(),
        };
        write_u64(&mut w, edges.len() as u64)?;
        for (s, t) in edges {
            write_u32(&mut w, s)?;
            write_u32(&mut w, t)?;
        }
    }
    Ok(())
}

/// Reads a graph written by [`save_graph`].
///
/// # Errors
///
/// Returns [`IoError::BadMagic`] for foreign files and
/// [`IoError::Malformed`] for truncated or inconsistent content.
pub fn load_graph<R: Read>(mut r: R) -> Result<HeteroGraph, IoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::BadMagic);
    }
    let type_count = read_u32(&mut r)? as usize;
    if type_count > 256 {
        return Err(IoError::Malformed(format!("{type_count} vertex types")));
    }
    let mut schema = GraphSchema::new();
    let mut counts = Vec::with_capacity(type_count);
    for _ in 0..type_count {
        let name = read_str(&mut r)?;
        let mnemonic = char::from_u32(read_u32(&mut r)?)
            .ok_or_else(|| IoError::Malformed("invalid mnemonic".into()))?;
        // `GraphSchema::add_vertex_type` treats a duplicate mnemonic as
        // a programming error and panics; from a byte stream it is
        // corruption and must surface as a structured error instead.
        if schema.vertex_types().any(|(_, d)| d.mnemonic == mnemonic) {
            return Err(IoError::Malformed(format!(
                "duplicate vertex-type mnemonic {mnemonic:?}"
            )));
        }
        let feature_dim = read_u64(&mut r)?;
        if feature_dim > MAX_FEATURE_DIM {
            return Err(IoError::Malformed(format!(
                "feature dimension {feature_dim} too large"
            )));
        }
        let count = read_u32(&mut r)?;
        if count > MAX_VERTEX_COUNT {
            return Err(IoError::Malformed(format!(
                "vertex count {count} too large"
            )));
        }
        schema.add_vertex_type(name, mnemonic, feature_dim as usize);
        counts.push(count);
    }
    let rel_count = read_u32(&mut r)?;
    if rel_count > MAX_RELATIONS {
        return Err(IoError::Malformed(format!(
            "{rel_count} relations exceeds the schema maximum"
        )));
    }
    let rel_count = rel_count as usize;
    let mut rel_edges = Vec::with_capacity(rel_count);
    let types: Vec<_> = schema.vertex_types().map(|(t, _)| t).collect();
    for _ in 0..rel_count {
        let lo = read_u32(&mut r)? as usize;
        let hi = read_u32(&mut r)? as usize;
        if lo >= types.len() || hi >= types.len() {
            return Err(IoError::Malformed("relation type out of range".into()));
        }
        schema.add_relation(types[lo], types[hi]);
        let n = read_u64(&mut r)? as usize;
        let mut edges = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            edges.push((read_u32(&mut r)?, read_u32(&mut r)?));
        }
        rel_edges.push((lo, hi, edges));
    }
    let mut builder = HeteroGraphBuilder::new(schema);
    for (i, &c) in counts.iter().enumerate() {
        builder.set_vertex_count(types[i], c);
    }
    for (lo, hi, edges) in rel_edges {
        for (s, t) in edges {
            builder.add_edge(
                Vertex::new(types[lo], VertexId::new(s)),
                Vertex::new(types[hi], VertexId::new(t)),
            )?;
        }
    }
    // Files written by `save_graph` hold a deduplicated simple graph;
    // a repeated edge means the stream is corrupt, not a convenience.
    Ok(builder.finish_checked()?)
}

/// Writes a dataset (graph + metapaths + provenance).
///
/// # Errors
///
/// Propagates [`IoError::Io`] from the writer.
pub fn save_dataset<W: Write>(dataset: &Dataset, mut w: W) -> Result<(), IoError> {
    save_graph(&dataset.graph, &mut w)?;
    write_str(&mut w, dataset.id.abbrev())?;
    write_u64(&mut w, dataset.scale.to_bits())?;
    write_u32(&mut w, dataset.metapaths.len() as u32)?;
    for mp in &dataset.metapaths {
        write_str(&mut w, mp.name())?;
    }
    Ok(())
}

/// Reads a dataset written by [`save_dataset`].
///
/// # Errors
///
/// Same conditions as [`load_graph`] plus metapath re-validation.
pub fn load_dataset<R: Read>(mut r: R) -> Result<Dataset, IoError> {
    let graph = load_graph(&mut r)?;
    let abbrev = read_str(&mut r)?;
    let id = DatasetId::ALL
        .into_iter()
        .find(|d| d.abbrev() == abbrev)
        .ok_or_else(|| IoError::Malformed(format!("unknown dataset id {abbrev:?}")))?;
    let scale = f64::from_bits(read_u64(&mut r)?);
    let count = read_u32(&mut r)?;
    if count > MAX_METAPATHS {
        return Err(IoError::Malformed(format!(
            "metapath count {count} too large"
        )));
    }
    let count = count as usize;
    let mut metapaths = Vec::with_capacity(count);
    for _ in 0..count {
        let name = read_str(&mut r)?;
        metapaths.push(Metapath::parse(&name, graph.schema())?);
    }
    Ok(Dataset {
        id,
        graph,
        metapaths,
        scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{generate, GeneratorConfig};
    use crate::instances::count_instances;

    #[test]
    fn graph_roundtrip_preserves_everything() {
        let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.05));
        let mut buf = Vec::new();
        save_graph(&ds.graph, &mut buf).unwrap();
        let loaded = load_graph(buf.as_slice()).unwrap();
        assert_eq!(loaded.total_vertex_count(), ds.graph.total_vertex_count());
        assert_eq!(loaded.total_edge_count(), ds.graph.total_edge_count());
        for mp in &ds.metapaths {
            assert_eq!(
                count_instances(&loaded, mp).unwrap(),
                count_instances(&ds.graph, mp).unwrap()
            );
        }
    }

    #[test]
    fn self_relation_roundtrip() {
        let ds = generate(DatasetId::Lastfm, GeneratorConfig::at_scale(0.05));
        let mut buf = Vec::new();
        save_graph(&ds.graph, &mut buf).unwrap();
        let loaded = load_graph(buf.as_slice()).unwrap();
        assert_eq!(loaded.total_edge_count(), ds.graph.total_edge_count());
        let u = loaded.schema().type_by_mnemonic('U').unwrap();
        // The U-U adjacency must survive both directions.
        for i in 0..loaded.vertex_count(u).unwrap() {
            let v = Vertex::new(u, VertexId::new(i));
            assert_eq!(
                loaded.typed_neighbors(v, u).unwrap(),
                ds.graph.typed_neighbors(v, u).unwrap()
            );
        }
    }

    #[test]
    fn dataset_roundtrip() {
        let ds = generate(DatasetId::Dblp, GeneratorConfig::at_scale(0.02));
        let mut buf = Vec::new();
        save_dataset(&ds, &mut buf).unwrap();
        let loaded = load_dataset(buf.as_slice()).unwrap();
        assert_eq!(loaded.id, ds.id);
        assert_eq!(loaded.scale, ds.scale);
        assert_eq!(loaded.metapaths.len(), ds.metapaths.len());
        assert_eq!(loaded.metapaths[0].name(), ds.metapaths[0].name());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE....".to_vec();
        assert!(matches!(load_graph(buf.as_slice()), Err(IoError::BadMagic)));
    }

    #[test]
    fn truncated_file_rejected() {
        let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.02));
        let mut buf = Vec::new();
        save_graph(&ds.graph, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_graph(buf.as_slice()).is_err());
    }

    #[test]
    fn errors_are_std_errors() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<IoError>();
    }

    #[test]
    fn absurd_count_fields_rejected_before_allocation() {
        // Each stream is valid up to one count field patched to a value
        // that, if trusted, would size a multi-GiB buffer. The loader
        // must return Malformed without attempting the allocation.
        let header = |vertex_count: u32, feature_dim: u64| -> Vec<u8> {
            let mut buf: Vec<u8> = Vec::new();
            buf.extend_from_slice(MAGIC);
            write_u32(&mut buf, 1).unwrap(); // vertex types
            write_str(&mut buf, "A").unwrap();
            write_u32(&mut buf, u32::from(b'A')).unwrap();
            write_u64(&mut buf, feature_dim).unwrap();
            write_u32(&mut buf, vertex_count).unwrap();
            buf
        };

        let huge_vertices = header(u32::MAX, 4);
        assert!(
            matches!(
                load_graph(huge_vertices.as_slice()),
                Err(IoError::Malformed(_))
            ),
            "u32::MAX vertex count must be rejected"
        );

        let huge_dim = header(1, u64::MAX);
        assert!(matches!(
            load_graph(huge_dim.as_slice()),
            Err(IoError::Malformed(_))
        ));

        let mut huge_rels = header(1, 4);
        write_u32(&mut huge_rels, u32::MAX).unwrap(); // relation count
        assert!(matches!(
            load_graph(huge_rels.as_slice()),
            Err(IoError::Malformed(_))
        ));

        // Dataset trailer: metapath count field.
        let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.02));
        let mut buf = Vec::new();
        save_dataset(&ds, &mut buf).unwrap();
        // The metapath count is the last u32 before the name strings;
        // rebuild the trailer with a poisoned count.
        let mut graph_part = Vec::new();
        save_graph(&ds.graph, &mut graph_part).unwrap();
        let mut poisoned = graph_part;
        write_str(&mut poisoned, ds.id.abbrev()).unwrap();
        write_u64(&mut poisoned, ds.scale.to_bits()).unwrap();
        write_u32(&mut poisoned, u32::MAX).unwrap();
        assert!(matches!(
            load_dataset(poisoned.as_slice()),
            Err(IoError::Malformed(_))
        ));
    }

    #[test]
    fn duplicate_mnemonic_in_stream_rejected() {
        // Found by the mutation fuzzer (seed 42): a corrupted stream
        // re-declaring a mnemonic must not reach the panicking schema
        // API.
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        write_u32(&mut buf, 2).unwrap(); // vertex types
        for name in ["A", "B"] {
            write_str(&mut buf, name).unwrap();
            write_u32(&mut buf, u32::from(b'A')).unwrap(); // same mnemonic twice
            write_u64(&mut buf, 4).unwrap();
            write_u32(&mut buf, 1).unwrap();
        }
        write_u32(&mut buf, 0).unwrap(); // relations
        let err = load_graph(buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::Malformed(_)), "{err}");
    }

    #[test]
    fn duplicate_edge_in_stream_rejected() {
        // Hand-build an HGB1 stream whose edge list repeats one edge:
        // two types of one vertex each, one relation, edge 0-0 twice.
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        write_u32(&mut buf, 2).unwrap(); // vertex types
        for name in ["A", "B"] {
            write_str(&mut buf, name).unwrap();
            write_u32(&mut buf, name.as_bytes()[0] as u32).unwrap(); // mnemonic
            write_u64(&mut buf, 4).unwrap(); // feature_dim
            write_u32(&mut buf, 1).unwrap(); // vertex count
        }
        write_u32(&mut buf, 1).unwrap(); // relations
        write_u32(&mut buf, 0).unwrap(); // lo type
        write_u32(&mut buf, 1).unwrap(); // hi type
        write_u64(&mut buf, 2).unwrap(); // edges
        for _ in 0..2 {
            write_u32(&mut buf, 0).unwrap();
            write_u32(&mut buf, 0).unwrap();
        }
        let err = load_graph(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, IoError::Graph(GraphError::DuplicateEdge { .. })),
            "{err}"
        );
    }
}

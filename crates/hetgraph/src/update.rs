//! Batch graph updates for the dynamic-inference workload.
//!
//! The paper's evaluation (§5.1) updates each graph "at a batch
//! granularity, where each batch contains 10% of the graph changes" and
//! runs one inference after each update. This module generates seeded
//! update batches and applies them, producing the sequence of graph
//! snapshots the end-to-end experiments iterate over.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::graph::HeteroGraph;
use crate::types::{Relation, Vertex, VertexId};

/// One batch of edge insertions.
///
/// Deletions are modeled as not re-inserting an edge when rebuilding;
/// the paper's workload only requires that the graph *changes* between
/// inferences, which insertions capture.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateBatch {
    /// Edges to insert.
    pub insertions: Vec<(Vertex, Vertex)>,
}

impl UpdateBatch {
    /// Number of edge insertions in this batch.
    pub fn len(&self) -> usize {
        self.insertions.len()
    }

    /// Returns `true` if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty()
    }
}

/// Generates `batches` update batches, each inserting
/// `fraction` × (current edge count) new random edges over the graph's
/// declared relations, weighted by each relation's existing edge count.
///
/// Deterministic for a given seed.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]`.
pub fn generate_update_batches(
    graph: &HeteroGraph,
    fraction: f64,
    batches: usize,
    seed: u64,
) -> Vec<UpdateBatch> {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let relations: Vec<(Relation, usize)> = graph
        .schema()
        .relations()
        .iter()
        .map(|&r| (r, graph.edge_count(r)))
        .filter(|&(_, c)| c > 0)
        .collect();
    let total_edges: usize = relations.iter().map(|&(_, c)| c).sum();
    let per_batch = ((total_edges as f64 * fraction).round() as usize).max(1);

    (0..batches)
        .map(|_| {
            let mut insertions = Vec::with_capacity(per_batch);
            for _ in 0..per_batch {
                // Pick a relation proportionally to its edge count.
                let mut pick = rng.gen_range(0..total_edges);
                let &(rel, _) = relations
                    .iter()
                    .find(|&&(_, c)| {
                        if pick < c {
                            true
                        } else {
                            pick -= c;
                            false
                        }
                    })
                    .expect("pick < total_edges");
                let na = graph.vertex_count(rel.lo()).expect("relation types exist");
                let nb = graph.vertex_count(rel.hi()).expect("relation types exist");
                let (a, b) = loop {
                    let a = Vertex::new(rel.lo(), VertexId::new(rng.gen_range(0..na)));
                    let b = Vertex::new(rel.hi(), VertexId::new(rng.gen_range(0..nb)));
                    if a != b {
                        break (a, b);
                    }
                };
                insertions.push((a, b));
            }
            UpdateBatch { insertions }
        })
        .collect()
}

/// Applies an update batch, returning the updated graph.
///
/// Rebuilds the CSR structures; the cost is linear in graph size, which
/// matches how a host would re-prepare the optimized layout after a
/// batch in the paper's dynamic scenario.
///
/// # Errors
///
/// Returns [`GraphError`] if an insertion references an undeclared
/// relation or an out-of-range vertex.
pub fn apply_update(graph: &HeteroGraph, batch: &UpdateBatch) -> Result<HeteroGraph, GraphError> {
    let mut builder = graph.to_builder();
    for &(a, b) in &batch.insertions {
        builder.add_edge(a, b)?;
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{generate, DatasetId, GeneratorConfig};

    #[test]
    fn batches_have_ten_percent_of_edges() {
        let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.2));
        let batches = generate_update_batches(&ds.graph, 0.10, 3, 7);
        assert_eq!(batches.len(), 3);
        let expected = (ds.graph.total_edge_count() as f64 * 0.10).round() as usize;
        for b in &batches {
            assert_eq!(b.len(), expected.max(1));
        }
    }

    #[test]
    fn apply_grows_edge_count() {
        let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.2));
        let batches = generate_update_batches(&ds.graph, 0.10, 1, 7);
        let updated = apply_update(&ds.graph, &batches[0]).unwrap();
        // Some sampled insertions may duplicate existing edges and
        // dedup away, but most must land.
        assert!(updated.total_edge_count() > ds.graph.total_edge_count());
        assert!(
            updated.total_edge_count() <= ds.graph.total_edge_count() + batches[0].len() as u64
        );
    }

    #[test]
    fn update_generation_is_deterministic() {
        let ds = generate(DatasetId::Lastfm, GeneratorConfig::at_scale(0.2));
        let a = generate_update_batches(&ds.graph, 0.05, 2, 42);
        let b = generate_update_batches(&ds.graph, 0.05, 2, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn updates_respect_schema() {
        let ds = generate(DatasetId::Dblp, GeneratorConfig::at_scale(0.1));
        let batches = generate_update_batches(&ds.graph, 0.10, 2, 9);
        let mut g = ds.graph.clone();
        for b in &batches {
            g = apply_update(&g, b).unwrap();
        }
        assert!(g.total_edge_count() > ds.graph.total_edge_count());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.1));
        generate_update_batches(&ds.graph, 0.0, 1, 1);
    }

    #[test]
    fn empty_batch_reports_empty() {
        let b = UpdateBatch::default();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}

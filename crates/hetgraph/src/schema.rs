//! Graph schemas: the declared vertex types and relations of a
//! heterogeneous graph.
//!
//! A [`GraphSchema`] is built once and then shared by the graph, the
//! metapath parser, and the dataset generators. Vertex types are
//! identified by single-character mnemonics (e.g. `A` for *Author*) so
//! metapaths can be written in the paper's compact notation (`"APA"`).

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::types::{Relation, VertexTypeId};

/// Declaration of one vertex type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexTypeDecl {
    /// Full name, e.g. `"Author"`.
    pub name: String,
    /// Single-character mnemonic used in metapath strings, e.g. `'A'`.
    pub mnemonic: char,
    /// Raw (pre-projection) feature dimension of this vertex type.
    pub feature_dim: usize,
}

/// The type-level structure of a heterogeneous graph.
///
/// ```
/// use hetgraph::GraphSchema;
/// let mut schema = GraphSchema::new();
/// let a = schema.add_vertex_type("Author", 'A', 334);
/// let p = schema.add_vertex_type("Paper", 'P', 4231);
/// schema.add_relation(a, p);
/// assert_eq!(schema.vertex_type_count(), 2);
/// assert!(schema.has_relation(hetgraph::Relation::new(a, p)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphSchema {
    vertex_types: Vec<VertexTypeDecl>,
    relations: Vec<Relation>,
}

impl GraphSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a vertex type and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if more than 256 vertex types are declared or if the
    /// mnemonic is already taken; schemas are authored by hand and both
    /// conditions are programming errors.
    pub fn add_vertex_type(
        &mut self,
        name: impl Into<String>,
        mnemonic: char,
        feature_dim: usize,
    ) -> VertexTypeId {
        assert!(
            self.vertex_types.len() < 256,
            "schema supports at most 256 vertex types"
        );
        assert!(
            self.vertex_types.iter().all(|d| d.mnemonic != mnemonic),
            "mnemonic {mnemonic:?} already declared"
        );
        let id = VertexTypeId::new(self.vertex_types.len() as u8);
        self.vertex_types.push(VertexTypeDecl {
            name: name.into(),
            mnemonic,
            feature_dim,
        });
        id
    }

    /// Declares that edges may exist between two vertex types.
    ///
    /// Declaring the same relation twice is a no-op. Returns the
    /// canonical [`Relation`].
    pub fn add_relation(&mut self, a: VertexTypeId, b: VertexTypeId) -> Relation {
        let rel = Relation::new(a, b);
        if !self.relations.contains(&rel) {
            self.relations.push(rel);
        }
        rel
    }

    /// Number of declared vertex types.
    pub fn vertex_type_count(&self) -> usize {
        self.vertex_types.len()
    }

    /// Declaration of a vertex type.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertexType`] if the id is not
    /// declared.
    pub fn vertex_type(&self, ty: VertexTypeId) -> Result<&VertexTypeDecl, GraphError> {
        self.vertex_types
            .get(ty.index())
            .ok_or(GraphError::UnknownVertexType(ty))
    }

    /// All declared vertex types in id order.
    pub fn vertex_types(&self) -> impl Iterator<Item = (VertexTypeId, &VertexTypeDecl)> {
        self.vertex_types
            .iter()
            .enumerate()
            .map(|(i, d)| (VertexTypeId::new(i as u8), d))
    }

    /// All declared relations, in declaration order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Returns `true` if the relation has been declared.
    pub fn has_relation(&self, rel: Relation) -> bool {
        self.relations.contains(&rel)
    }

    /// Resolves a mnemonic character to its vertex type.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertexTypeName`] if no type uses the
    /// mnemonic.
    pub fn type_by_mnemonic(&self, mnemonic: char) -> Result<VertexTypeId, GraphError> {
        self.vertex_types
            .iter()
            .position(|d| d.mnemonic == mnemonic)
            .map(|i| VertexTypeId::new(i as u8))
            .ok_or_else(|| GraphError::UnknownVertexTypeName(mnemonic.to_string()))
    }

    /// Resolves a full type name to its vertex type.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertexTypeName`] if no type has the
    /// name.
    pub fn type_by_name(&self, name: &str) -> Result<VertexTypeId, GraphError> {
        self.vertex_types
            .iter()
            .position(|d| d.name == name)
            .map(|i| VertexTypeId::new(i as u8))
            .ok_or_else(|| GraphError::UnknownVertexTypeName(name.to_string()))
    }

    /// The neighbor types reachable from `ty` through declared relations.
    pub fn neighbor_types(&self, ty: VertexTypeId) -> Vec<VertexTypeId> {
        let mut out: Vec<VertexTypeId> =
            self.relations.iter().filter_map(|r| r.other(ty)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn academic() -> (GraphSchema, VertexTypeId, VertexTypeId, VertexTypeId) {
        let mut s = GraphSchema::new();
        let a = s.add_vertex_type("Author", 'A', 334);
        let p = s.add_vertex_type("Paper", 'P', 4231);
        let c = s.add_vertex_type("Conference", 'C', 50);
        s.add_relation(a, p);
        s.add_relation(p, c);
        (s, a, p, c)
    }

    #[test]
    fn vertex_types_are_dense() {
        let (s, a, p, c) = academic();
        assert_eq!(a.index(), 0);
        assert_eq!(p.index(), 1);
        assert_eq!(c.index(), 2);
        assert_eq!(s.vertex_type_count(), 3);
    }

    #[test]
    fn duplicate_relation_is_noop() {
        let (mut s, a, p, _) = academic();
        let before = s.relations().len();
        s.add_relation(p, a);
        assert_eq!(s.relations().len(), before);
    }

    #[test]
    fn mnemonic_lookup() {
        let (s, a, _, c) = academic();
        assert_eq!(s.type_by_mnemonic('A').unwrap(), a);
        assert_eq!(s.type_by_mnemonic('C').unwrap(), c);
        assert!(s.type_by_mnemonic('X').is_err());
    }

    #[test]
    fn name_lookup() {
        let (s, _, p, _) = academic();
        assert_eq!(s.type_by_name("Paper").unwrap(), p);
        assert!(s.type_by_name("Movie").is_err());
    }

    #[test]
    fn neighbor_types_of_paper() {
        let (s, a, p, c) = academic();
        assert_eq!(s.neighbor_types(p), vec![a, c]);
        assert_eq!(s.neighbor_types(a), vec![p]);
    }

    #[test]
    #[should_panic(expected = "mnemonic")]
    fn duplicate_mnemonic_panics() {
        let mut s = GraphSchema::new();
        s.add_vertex_type("Author", 'A', 8);
        s.add_vertex_type("Actor", 'A', 8);
    }

    #[test]
    fn unknown_vertex_type_errors() {
        let (s, ..) = academic();
        assert!(s.vertex_type(VertexTypeId::new(9)).is_err());
    }

    #[test]
    fn feature_dims_are_recorded() {
        let (s, a, ..) = academic();
        assert_eq!(s.vertex_type(a).unwrap().feature_dim, 334);
    }
}

//! Compressed sparse row adjacency used for every typed relation.
//!
//! The paper's *optimized graph layout* (§4.1) stores a vertex's
//! neighbors of different types separately so the cartesian-like product
//! can read a type-homogeneous neighbor list without per-edge type
//! checks. We realize that layout by keeping one [`Csr`] per *directed
//! typed relation*: the CSR for (Paper → Author) lists, for every paper,
//! exactly its author neighbors.

use serde::{Deserialize, Serialize};

use crate::types::VertexId;

/// Immutable CSR adjacency from one vertex type to another.
///
/// Row `i` holds the sorted neighbor list of source vertex `i`. The
/// structure is append-only at build time (see [`CsrBuilder`]) and
/// immutable afterwards.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from an edge list over `src_count` source vertices.
    ///
    /// Duplicate edges are removed (the layout stores simple graphs);
    /// neighbor lists are sorted for deterministic iteration.
    pub fn from_edges(src_count: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut builder = CsrBuilder::new(src_count);
        for &(s, t) in edges {
            builder.push(s, t);
        }
        builder.finish()
    }

    /// Number of source vertices (rows).
    pub fn source_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of stored edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Neighbor list of source vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; callers validate ids at the graph
    /// boundary.
    pub fn neighbors(&self, v: VertexId) -> &[u32] {
        let i = v.index();
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of source vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Iterates all `(source, target)` pairs in row order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.source_count()).flat_map(move |s| {
            let sv = VertexId::new(s as u32);
            self.neighbors(sv)
                .iter()
                .map(move |&t| (sv, VertexId::new(t)))
        })
    }

    /// Bytes needed to store this CSR (offsets plus targets, 4 bytes
    /// each), used by the memory-footprint analysis of Table 1.
    pub fn byte_size(&self) -> usize {
        (self.offsets.len() + self.targets.len()) * std::mem::size_of::<u32>()
    }

    /// Checks structural invariants; used by tests and debug assertions.
    ///
    /// Invariants: offsets are monotonically non-decreasing, the final
    /// offset equals the target count, and every neighbor list is
    /// sorted.
    pub fn validate(&self) -> bool {
        let Some(&last) = self.offsets.last() else {
            return self.targets.is_empty();
        };
        if last as usize != self.targets.len() {
            return false;
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        (0..self.source_count()).all(|s| {
            self.neighbors(VertexId::new(s as u32))
                .windows(2)
                .all(|w| w[0] <= w[1])
        })
    }
}

/// Incremental builder for [`Csr`].
///
/// ```
/// use hetgraph::csr::CsrBuilder;
/// use hetgraph::VertexId;
/// let mut b = CsrBuilder::new(2);
/// b.push(VertexId::new(0), VertexId::new(9));
/// b.push(VertexId::new(0), VertexId::new(3));
/// let csr = b.finish();
/// assert_eq!(csr.neighbors(VertexId::new(0)), &[3, 9]);
/// assert_eq!(csr.degree(VertexId::new(1)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    src_count: usize,
    edges: Vec<(u32, u32)>,
}

impl CsrBuilder {
    /// Creates a builder for `src_count` source vertices.
    pub fn new(src_count: usize) -> Self {
        CsrBuilder {
            src_count,
            edges: Vec::new(),
        }
    }

    /// Appends an edge.
    ///
    /// # Panics
    ///
    /// Panics if the source vertex is out of range.
    pub fn push(&mut self, src: VertexId, dst: VertexId) {
        assert!(
            src.index() < self.src_count,
            "source vertex {src} out of range ({} sources)",
            self.src_count
        );
        self.edges.push((src.raw(), dst.raw()));
    }

    /// Number of edges accumulated so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the CSR, sorting and deduplicating each neighbor list.
    pub fn finish(mut self) -> Csr {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut counts = vec![0u32; self.src_count + 1];
        for &(s, _) in &self.edges {
            counts[s as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        let targets = self.edges.into_iter().map(|(_, t)| t).collect();
        let csr = Csr { offsets, targets };
        debug_assert!(csr.validate());
        csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn empty_csr() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(csr.source_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert!(csr.validate());
    }

    #[test]
    fn neighbors_are_sorted() {
        let csr = Csr::from_edges(3, &[(v(1), v(7)), (v(1), v(2)), (v(0), v(5))]);
        assert_eq!(csr.neighbors(v(1)), &[2, 7]);
        assert_eq!(csr.neighbors(v(0)), &[5]);
        assert_eq!(csr.neighbors(v(2)), &[] as &[u32]);
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let csr = Csr::from_edges(1, &[(v(0), v(1)), (v(0), v(1))]);
        assert_eq!(csr.neighbors(v(0)), &[1]);
        assert_eq!(csr.edge_count(), 1);
    }

    #[test]
    fn iter_edges_roundtrip() {
        let edges = vec![(v(0), v(1)), (v(2), v(0)), (v(2), v(3))];
        let csr = Csr::from_edges(3, &edges);
        let mut collected: Vec<_> = csr.iter_edges().collect();
        collected.sort_unstable();
        let mut expected = edges;
        expected.sort_unstable();
        assert_eq!(collected, expected);
    }

    #[test]
    fn byte_size_counts_offsets_and_targets() {
        let csr = Csr::from_edges(2, &[(v(0), v(1))]);
        // 3 offsets + 1 target = 4 u32s.
        assert_eq!(csr.byte_size(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range_source() {
        let mut b = CsrBuilder::new(1);
        b.push(v(1), v(0));
    }

    #[test]
    fn degrees() {
        let csr = Csr::from_edges(2, &[(v(0), v(1)), (v(0), v(2)), (v(1), v(0))]);
        assert_eq!(csr.degree(v(0)), 2);
        assert_eq!(csr.degree(v(1)), 1);
    }
}

//! Fundamental identifier types for heterogeneous graphs.
//!
//! A heterogeneous graph partitions its vertices into *types* (author,
//! paper, …). Vertices are identified by a `(type, index)` pair so that
//! per-type arrays (feature matrices, degree tables) index directly with
//! the local index. [`Vertex`] packs the pair into a `Copy` value.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a vertex type (e.g. *Author* or *Paper*).
///
/// Vertex types are small dense integers assigned by the
/// [`GraphSchema`](crate::schema::GraphSchema) in declaration order.
///
/// ```
/// use hetgraph::VertexTypeId;
/// let author = VertexTypeId::new(0);
/// assert_eq!(author.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexTypeId(u8);

impl VertexTypeId {
    /// Creates a vertex type id from its dense index.
    pub const fn new(index: u8) -> Self {
        VertexTypeId(index)
    }

    /// Returns the dense index of this type.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of an edge type, i.e. an unordered vertex-type pair that
/// carries edges (e.g. *Author–Paper*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeTypeId(u16);

impl EdgeTypeId {
    /// Creates an edge type id from its dense index.
    pub const fn new(index: u16) -> Self {
        EdgeTypeId(index)
    }

    /// Returns the dense index of this edge type.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// Local identifier of a vertex within its type.
///
/// `VertexId(3)` for the *Paper* type denotes the fourth paper. Local ids
/// are dense: a type with `n` vertices uses ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex id from its local index.
    pub const fn new(index: u32) -> Self {
        VertexId(index)
    }

    /// Returns the local index of this vertex within its type.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(value: u32) -> Self {
        VertexId(value)
    }
}

/// A fully qualified vertex: type plus local id.
///
/// ```
/// use hetgraph::{Vertex, VertexId, VertexTypeId};
/// let v = Vertex::new(VertexTypeId::new(1), VertexId::new(42));
/// assert_eq!(v.ty.index(), 1);
/// assert_eq!(v.id.index(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Vertex {
    /// The vertex type.
    pub ty: VertexTypeId,
    /// The local id within the type.
    pub id: VertexId,
}

impl Vertex {
    /// Creates a vertex from a type and a local id.
    pub const fn new(ty: VertexTypeId, id: VertexId) -> Self {
        Vertex { ty, id }
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ty, self.id)
    }
}

/// An unordered pair of vertex types that may carry edges.
///
/// The pair is stored in canonical (sorted) order so that `(A, P)` and
/// `(P, A)` compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Relation {
    lo: VertexTypeId,
    hi: VertexTypeId,
}

impl Relation {
    /// Creates the canonical relation between two vertex types.
    ///
    /// Self-relations (e.g. *Paper–Paper* citations) are permitted.
    pub fn new(a: VertexTypeId, b: VertexTypeId) -> Self {
        if a <= b {
            Relation { lo: a, hi: b }
        } else {
            Relation { lo: b, hi: a }
        }
    }

    /// The smaller type of the pair.
    pub const fn lo(self) -> VertexTypeId {
        self.lo
    }

    /// The larger type of the pair.
    pub const fn hi(self) -> VertexTypeId {
        self.hi
    }

    /// Returns `true` if this relation touches `ty`.
    pub fn contains(self, ty: VertexTypeId) -> bool {
        self.lo == ty || self.hi == ty
    }

    /// Given one endpoint type, returns the other.
    ///
    /// Returns `None` if `ty` is not part of this relation. For
    /// self-relations the same type is returned.
    pub fn other(self, ty: VertexTypeId) -> Option<VertexTypeId> {
        if ty == self.lo {
            Some(self.hi)
        } else if ty == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_type_roundtrip() {
        let t = VertexTypeId::new(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.to_string(), "T7");
    }

    #[test]
    fn vertex_id_from_u32() {
        let v: VertexId = 9u32.into();
        assert_eq!(v.index(), 9);
        assert_eq!(v.raw(), 9);
    }

    #[test]
    fn vertex_display() {
        let v = Vertex::new(VertexTypeId::new(2), VertexId::new(5));
        assert_eq!(v.to_string(), "T2:5");
    }

    #[test]
    fn relation_is_canonical() {
        let a = VertexTypeId::new(0);
        let p = VertexTypeId::new(1);
        assert_eq!(Relation::new(a, p), Relation::new(p, a));
        assert_eq!(Relation::new(p, a).lo(), a);
    }

    #[test]
    fn relation_other_endpoint() {
        let a = VertexTypeId::new(0);
        let p = VertexTypeId::new(1);
        let c = VertexTypeId::new(2);
        let r = Relation::new(a, p);
        assert_eq!(r.other(a), Some(p));
        assert_eq!(r.other(p), Some(a));
        assert_eq!(r.other(c), None);
        assert!(r.contains(a) && r.contains(p) && !r.contains(c));
    }

    #[test]
    fn self_relation() {
        let p = VertexTypeId::new(1);
        let r = Relation::new(p, p);
        assert_eq!(r.other(p), Some(p));
    }

    #[test]
    fn ids_are_ordered() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert!(VertexTypeId::new(0) < VertexTypeId::new(1));
    }
}

//! Quickstart: simulate MetaNMP on a synthetic DBLP graph and verify
//! the hardware result against the software reference.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use hetgraph::datasets::DatasetId;
use hgnn::ModelKind;
use metanmp::{MetanmpError, Simulator};

fn main() -> Result<(), MetanmpError> {
    let sim = Simulator::builder()
        .dataset(DatasetId::Dblp)
        .scale(0.03) // laptop-sized synthetic DBLP
        .model(ModelKind::Magnn)
        .hidden_dim(32)
        .build()?;

    println!(
        "dataset: {} ({} vertices, {} edges, {} metapaths)",
        sim.dataset().id.name(),
        sim.dataset().graph.total_vertex_count(),
        sim.dataset().graph.total_edge_count(),
        sim.dataset().metapaths.len()
    );

    let outcome = sim.run()?;

    println!(
        "hardware embeddings match software reference: {} (max diff {:.2e})",
        outcome.matches_reference, outcome.max_reference_diff
    );
    println!(
        "MetaNMP inference: {:.3} ms ({} cycles), energy {:.3} mJ",
        outcome.nmp.seconds * 1e3,
        outcome.nmp.cycles,
        outcome.nmp.energy.total_j() * 1e3
    );
    println!(
        "instances generated on the fly: {}, aggregations: {}, RCEU copies: {}",
        outcome.nmp.counts.instances, outcome.nmp.counts.aggregations, outcome.nmp.counts.copies
    );
    for (mp, mem) in sim.dataset().metapaths.iter().zip(&outcome.memory) {
        println!(
            "memory for {}: baseline {:.2} MB vs MetaNMP {:.2} MB ({:.1}% reduction)",
            mp.name(),
            mem.baseline_total() as f64 / (1 << 20) as f64,
            mem.metanmp_total() as f64 / (1 << 20) as f64,
            mem.reduction() * 100.0
        );
    }
    Ok(())
}

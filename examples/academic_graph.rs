//! Build the paper's Figure 1 academic heterogeneous graph by hand,
//! define the APA and APCPA metapaths, and walk through every layer of
//! the stack: instance counting, cartesian-like products, redundancy
//! analysis, and a full MAGNN inference on both engines.
//!
//! Run with:
//! ```text
//! cargo run --release --example academic_graph
//! ```

use hetgraph::cartesian::{center_products, product_plan, reuse_stats};
use hetgraph::instances::{count_instances, enumerate_instances};
use hetgraph::{GraphSchema, HeteroGraphBuilder, Metapath, Vertex, VertexId};
use hgnn::engine::{InferenceEngine, MaterializedEngine, OnTheFlyEngine};
use hgnn::{FeatureStore, ModelConfig, ModelKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Figure 1: authors, papers, conferences. ---
    let mut schema = GraphSchema::new();
    let a = schema.add_vertex_type("Author", 'A', 16);
    let p = schema.add_vertex_type("Paper", 'P', 24);
    let c = schema.add_vertex_type("Conference", 'C', 8);
    schema.add_relation(a, p);
    schema.add_relation(p, c);

    let mut builder = HeteroGraphBuilder::new(schema);
    builder.set_vertex_count(a, 3); // a1, a2, a3
    builder.set_vertex_count(p, 3); // p1, p2, p3
    builder.set_vertex_count(c, 2); // c1, c2
    let va = |i| Vertex::new(a, VertexId::new(i));
    let vp = |i| Vertex::new(p, VertexId::new(i));
    let vc = |i| Vertex::new(c, VertexId::new(i));
    // Authorship (who wrote what) and publication venues.
    for (author, paper) in [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)] {
        builder.add_edge(va(author), vp(paper))?;
    }
    for (paper, conf) in [(0, 0), (1, 1), (2, 1)] {
        builder.add_edge(vp(paper), vc(conf))?;
    }
    let graph = builder.finish();

    // --- Metapaths: co-authors and same-conference authors. ---
    let apa = Metapath::parse("APA", graph.schema())?;
    let apcpa = Metapath::parse("APCPA", graph.schema())?;
    println!("APA instances:   {}", count_instances(&graph, &apa)?);
    println!("APCPA instances: {}", count_instances(&graph, &apcpa)?);

    // Enumerate the APA instances explicitly (they are few).
    let inst = enumerate_instances(&graph, &apa, usize::MAX)?;
    for row in inst.iter() {
        println!(
            "  instance a{} - p{} - a{}",
            row[0] + 1,
            row[1] + 1,
            row[2] + 1
        );
    }

    // --- The cartesian-like product view (§3.1). ---
    println!(
        "\ncartesian-like decomposition of APCPA: {:?}",
        product_plan(&apcpa)
    );
    for product in center_products(&graph, &apa)? {
        println!(
            "  center p{}: {} left x {} right = {} instances",
            product.center + 1,
            product.left.len(),
            product.right.len(),
            product.instance_count()
        );
    }

    // --- Redundancy (§3.2 / Figure 5). ---
    for mp in [&apa, &apcpa] {
        let stats = reuse_stats(&graph, mp)?;
        println!(
            "\n{}: naive {} vector ops, shared {} ({:.1}% redundant)",
            mp.name(),
            stats.naive_aggregations,
            stats.shared_aggregations,
            stats.redundancy_ratio() * 100.0
        );
    }

    // --- Full MAGNN inference on both engines. ---
    let features = FeatureStore::random(&graph, 42);
    let config = ModelConfig::new(ModelKind::Magnn).with_hidden_dim(8);
    let metapaths = vec![apa, apcpa];
    let naive = MaterializedEngine.run(&graph, &features, &config, &metapaths)?;
    let reuse = OnTheFlyEngine.run(&graph, &features, &config, &metapaths)?;
    println!(
        "\nengines agree: max |diff| = {:.2e}",
        naive.embeddings.max_abs_diff(&reuse.embeddings)
    );
    println!(
        "materialized kept {} bytes of intermediates; on-the-fly kept none",
        naive.resident_intermediate_bytes
    );
    Ok(())
}

//! Dynamic-graph inference (the paper's §5.1 workload): apply 10%
//! update batches to a LastFM-like graph and run one inference after
//! each batch, comparing how the materialized baseline and the
//! on-the-fly pipeline cope with a changing graph.
//!
//! The baseline must re-run metapath instance matching after every
//! batch (its stored instances are stale); MetaNMP's on-the-fly
//! generation has nothing to invalidate.
//!
//! Run with:
//! ```text
//! cargo run --release --example dynamic_updates
//! ```

use hetgraph::datasets::{generate, DatasetId, GeneratorConfig};
use hetgraph::update::{apply_update, generate_update_batches};
use hgnn::engine::{InferenceEngine, MaterializedEngine, OnTheFlyEngine};
use hgnn::{FeatureStore, ModelConfig, ModelKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = generate(DatasetId::Lastfm, GeneratorConfig::at_scale(0.02));
    let mut graph = ds.graph.clone();
    let config = ModelConfig::new(ModelKind::Magnn)
        .with_hidden_dim(16)
        .with_attention(false);

    let batches = generate_update_batches(&graph, 0.10, 3, 7);
    println!(
        "initial graph: {} vertices, {} edges; {} update batches of ~10% each\n",
        graph.total_vertex_count(),
        graph.total_edge_count(),
        batches.len()
    );

    for (i, batch) in batches.iter().enumerate() {
        graph = apply_update(&graph, batch)?;
        let features = FeatureStore::random(&graph, 7);

        let naive = MaterializedEngine.run(&graph, &features, &config, &ds.metapaths)?;
        let otf = OnTheFlyEngine.run(&graph, &features, &config, &ds.metapaths)?;

        println!(
            "batch {}: {} edges now, {} instances",
            i + 1,
            graph.total_edge_count(),
            naive.profile.instances
        );
        println!(
            "  re-materialization writes {} MB of instances; on-the-fly writes none",
            naive.profile.matching.bytes_written / (1 << 20)
        );
        println!(
            "  redundant aggregation eliminated on the fly: {:.1}%",
            otf.profile.redundancy_eliminated() * 100.0
        );
        assert!(naive.embeddings.max_abs_diff(&otf.embeddings) < 1e-3);
    }
    println!("\nall inferences verified: both pipelines agree after every update");
    Ok(())
}

//! Design-space exploration: sweep the MetaNMP hardware configuration
//! (channels, DIMMs, ranks, PE lanes, communication policy) over one
//! workload with the calibrated analytic estimator — the kind of study
//! Figures 15–17 of the paper distill.
//!
//! Run with:
//! ```text
//! cargo run --release --example design_space
//! ```

use dramsim::DramConfig;
use hetgraph::datasets::{generate, DatasetId, GeneratorConfig};
use hgnn::ModelKind;
use nmp::{estimate, CommPolicy, NmpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = generate(DatasetId::Lastfm, GeneratorConfig::at_scale(0.1));
    println!(
        "workload: LastFM @ 0.1 scale, MAGNN over {:?}",
        ds.metapaths.iter().map(|m| m.name()).collect::<Vec<_>>()
    );

    let base = NmpConfig {
        hidden_dim: 64,
        ..NmpConfig::default()
    };
    let baseline = estimate(&ds.graph, ModelKind::Magnn, &ds.metapaths, &base)?;
    println!(
        "\nbaseline (4ch x 2 DIMM x 2 ranks, broadcast): {:.3} ms\n",
        baseline.seconds * 1e3
    );

    println!(
        "{:<44} {:>10} {:>9}",
        "configuration", "time (ms)", "speedup"
    );
    let eval = |label: &str, cfg: NmpConfig| -> Result<(), Box<dyn std::error::Error>> {
        let r = estimate(&ds.graph, ModelKind::Magnn, &ds.metapaths, &cfg)?;
        println!(
            "{label:<44} {:>10.3} {:>8.2}x",
            r.seconds * 1e3,
            baseline.seconds / r.seconds
        );
        Ok(())
    };

    for (label, channels, dimms, ranks) in [
        (
            "1 channel x 8 DIMMs (single-channel bus)",
            1usize,
            8usize,
            2usize,
        ),
        ("2 channels x 2 DIMMs", 2, 2, 2),
        ("8 channels x 2 DIMMs", 8, 2, 2),
        ("4 channels x 2 DIMMs x 1 rank", 4, 2, 1),
        ("4 channels x 2 DIMMs x 4 ranks", 4, 2, 4),
    ] {
        eval(
            label,
            NmpConfig {
                dram: DramConfig {
                    channels,
                    dimms_per_channel: dimms,
                    ranks_per_dimm: ranks,
                    ..DramConfig::default()
                },
                ..base
            },
        )?;
    }
    eval(
        "naive communication (no broadcast)",
        base.with_comm(CommPolicy::Naive),
    )?;
    eval(
        "16 PE lanes per rank-AU",
        NmpConfig {
            pe_lanes: 16,
            ..base
        },
    )?;
    eval(
        "RCEU disabled (no computation reuse)",
        NmpConfig {
            reuse: false,
            ..base
        },
    )?;
    eval(
        "aggregation on host (w/o-NMPAggr)",
        NmpConfig {
            aggregate_in_nmp: false,
            ..base
        },
    )?;
    Ok(())
}

//! Vendored offline stand-in for `criterion`.
//!
//! Provides the macro/struct surface the bench targets use —
//! `criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, and `black_box` — backed
//! by a simple mean-of-samples wall-clock timer. No statistics, plots,
//! or baselines: each benchmark prints one `name ... time/iter` line.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Prints the closing summary (no-op in the vendored harness).
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Caps measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus parameter label.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so plain strings also work.
pub trait IntoBenchmarkId {
    /// Converts the receiver.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to benchmark closures to time the hot loop.
pub struct Bencher {
    /// Accumulated time over `iters` iterations of the current sample.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Calibrate the per-sample iteration count to ~5 ms.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    loop {
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || b.iters >= 1 << 20 {
            break;
        }
        b.iters *= 2;
    }
    let iters = b.iters;
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        f(&mut b);
        best = best.min(b.elapsed);
        total += b.elapsed;
    }
    let mean_ns = total.as_nanos() as f64 / (samples as u64 * iters) as f64;
    let best_ns = best.as_nanos() as f64 / iters as f64;
    println!(
        "bench {name:<50} {:>12}/iter (best {})",
        fmt_ns(mean_ns),
        fmt_ns(best_ns)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            let _ = $config;
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

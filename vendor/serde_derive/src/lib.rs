//! Vendored stand-in for `serde_derive`, written against the plain
//! `proc_macro` API (no `syn`/`quote`) so the workspace builds without
//! network access.
//!
//! The generated code targets the value-tree data model of the vendored
//! `serde` crate: `Serialize::to_value` / `Deserialize::from_value`.
//! Supported shapes are exactly what this repository uses: named-field
//! structs, tuple structs, unit structs, and enums whose variants are
//! unit, tuple, or struct-like. `#[serde(...)]` attributes and generic
//! type parameters are intentionally not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, kind)) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&name, &kind),
                Mode::Deserialize => gen_deserialize(&name, &kind),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Result<(String, Kind), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let item = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".to_string()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generics (type `{name}`)"
        ));
    }
    match item.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Kind::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Kind::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Kind::UnitStruct)),
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Kind::Enum(parse_variants(g.stream())?)))
            }
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive for item kind `{other}`")),
    }
}

/// Skips outer attributes (`#[...]`, including expanded doc comments)
/// and a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant list on top-level commas, treating `<...>`
/// angle brackets as nesting (they are not `Group`s in a token stream).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for field in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&field, &mut i);
        match field.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            _ => return Err("expected field name".to_string()),
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for var in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&var, &mut i);
        let name = match var.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("expected variant name".to_string()),
        };
        i += 1;
        let shape = match var.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            // Unit variant, possibly with `= discriminant` (ignored).
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(name: &str, kind: &Kind) -> String {
    let body = match kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let _ = writeln!(
                    s,
                    "__m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                );
            }
            s.push_str("::serde::value::Value::Map(__m)");
            s
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::value::Value::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
        Kind::UnitStruct => "::serde::value::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = writeln!(
                            s,
                            "{name}::{vn} => ::serde::value::Value::Str({vn:?}.to_string()),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::value::Value::Array(::std::vec![{}])",
                                items.join(", ")
                            )
                        };
                        let _ = writeln!(
                            s,
                            "{name}::{vn}({}) => ::serde::value::Value::Map(::std::vec![({vn:?}.to_string(), {inner})]),",
                            binds.join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        let _ = writeln!(
                            s,
                            "{name}::{vn} {{ {binds} }} => ::serde::value::Value::Map(::std::vec![({vn:?}.to_string(), ::serde::value::Value::Map(::std::vec![{}]))]),",
                            items.join(", ")
                        );
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(name: &str, kind: &Kind) -> String {
    let body = match kind {
        Kind::NamedStruct(fields) => {
            let mut s = format!(
                "let __m = __v.as_map().ok_or_else(|| ::serde::value::DeError::expected(\"map\", {name:?}))?;\n"
            );
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                let _ = writeln!(
                    s,
                    "{f}: ::serde::Deserialize::from_value(::serde::value::map_get(__m, {f:?}))?,"
                );
            }
            s.push_str("})");
            s
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let mut s = format!(
                "let __a = __v.as_array().ok_or_else(|| ::serde::value::DeError::expected(\"array\", {name:?}))?;\n\
                 if __a.len() != {n} {{ return ::std::result::Result::Err(::serde::value::DeError::expected(\"array of {n}\", {name:?})); }}\n"
            );
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            let _ = write!(s, "::std::result::Result::Ok({name}({}))", items.join(", "));
            s
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut s = String::from(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {\nmatch __s {\n",
            );
            for v in variants {
                if matches!(v.shape, Shape::Unit) {
                    let vn = &v.name;
                    let _ = writeln!(
                        s,
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),"
                    );
                }
            }
            s.push_str("_ => {}\n}\n}\n");
            s.push_str(
                "if let ::std::option::Option::Some(__m) = __v.as_map() {\nif __m.len() == 1 {\nlet (__k, __inner) = &__m[0];\nmatch __k.as_str() {\n",
            );
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Tuple(1) => {
                        let _ = writeln!(
                            s,
                            "{vn:?} => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        let _ = writeln!(
                            s,
                            "{vn:?} => {{\nlet __a = __inner.as_array().ok_or_else(|| ::serde::value::DeError::expected(\"array\", {name:?}))?;\n\
                             if __a.len() != {n} {{ return ::std::result::Result::Err(::serde::value::DeError::expected(\"array of {n}\", {name:?})); }}\n\
                             return ::std::result::Result::Ok({name}::{vn}({}));\n}}",
                            items.join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("{f}: ::serde::Deserialize::from_value(::serde::value::map_get(__mm, {f:?}))?")
                            })
                            .collect();
                        let _ = writeln!(
                            s,
                            "{vn:?} => {{\nlet __mm = __inner.as_map().ok_or_else(|| ::serde::value::DeError::expected(\"map\", {name:?}))?;\n\
                             return ::std::result::Result::Ok({name}::{vn} {{ {} }});\n}}",
                            items.join(", ")
                        );
                    }
                }
            }
            s.push_str("_ => {}\n}\n}\n}\n");
            let _ = write!(
                s,
                "::std::result::Result::Err(::serde::value::DeError::expected(\"variant of {name}\", {name:?}))"
            );
            s
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::value::DeError> {{\n{body}\n}}\n}}"
    )
}

//! Vendored offline stand-in for `serde`.
//!
//! The build container has no network access, so this workspace ships a
//! minimal replacement implementing the subset of serde this repository
//! uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, plus `serde_json`-style string round-trips.
//!
//! Instead of serde's visitor architecture, serialization goes through
//! an owned JSON-like [`value::Value`] tree: `Serialize::to_value`
//! builds one, `Deserialize::from_value` reads one back. The vendored
//! `serde_json` crate renders and parses that tree. This is not
//! API-complete serde — it is exactly the surface the simulator needs.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use value::{DeError, Value};

/// Converts a value into the [`Value`] tree.
pub trait Serialize {
    /// Builds the value-tree representation.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads the value back; errors describe the first mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------------ primitives

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| DeError::expected(stringify!($t), "out-of-range integer")),
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| DeError::expected(stringify!($t), "out-of-range integer")),
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 => Ok(f as $t),
                    _ => Err(DeError::expected(stringify!($t), v.kind())),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| DeError::expected(stringify!($t), "out-of-range integer")),
                    Value::UInt(u) => i128::try_from(u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t), "out-of-range integer")),
                    Value::Float(f) if f.fract() == 0.0 => Ok(f as $t),
                    _ => Err(DeError::expected(stringify!($t), v.kind())),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128, usize);
impl_int!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Null => Ok(<$t>::NAN), // JSON has no NaN/inf
                    _ => Err(DeError::expected(stringify!($t), v.kind())),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool", v.kind())),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("char", v.kind())),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::expected("array of fixed length", "array"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::expected("tuple array", v.kind()))?;
                let expected = 0usize $(+ { let _ = $idx; 1 })+;
                if a.len() != expected {
                    return Err(DeError::expected("tuple array", "wrong length"));
                }
                Ok(($($t::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

/// Maps serialize as an array of `[key, value]` pairs so non-string
/// keys (tuples, newtype ids) round-trip without a key codec.
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("map as pair array", v.kind()))?;
        items
            .iter()
            .map(|pair| {
                let p = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| DeError::expected("[key, value] pair", pair.kind()))?;
                Ok((K::from_value(&p[0])?, V::from_value(&p[1])?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("map as pair array", v.kind()))?;
        items
            .iter()
            .map(|pair| {
                let p = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| DeError::expected("[key, value] pair", pair.kind()))?;
                Ok((K::from_value(&p[0])?, V::from_value(&p[1])?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

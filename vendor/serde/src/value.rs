//! The JSON-like value tree all (de)serialization flows through.

use std::fmt;

/// An owned, ordered JSON-like value.
///
/// Maps preserve insertion order (a `Vec` of pairs) so rendered JSON is
/// deterministic and mirrors struct field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or signed integer.
    Int(i128),
    /// Non-negative integer.
    UInt(u128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Map(_) => "map",
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map payload, if this is a map.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => u64::try_from(u).ok(),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// Boolean payload, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Looks up `key` in a map value (`None` for non-maps).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// `true` for any numeric variant.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::UInt(_) | Value::Float(_))
    }

    /// `true` for the string variant.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::Str(_))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Map-key indexing; absent keys and non-maps yield `Null`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Array indexing; out-of-range and non-arrays yield `Null`.
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

static NULL: Value = Value::Null;

/// Looks up a field in a parsed map, yielding `Null` when absent so
/// `Option` fields tolerate missing keys.
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> &'a Value {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// A deserialization error: what was expected vs. what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    expected: String,
    found: String,
}

impl DeError {
    /// Creates an error from an expectation and the offending kind.
    pub fn expected(expected: &str, found: &str) -> Self {
        DeError {
            expected: expected.to_string(),
            found: found.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {}, found {}", self.expected, self.found)
    }
}

impl std::error::Error for DeError {}

//! Vendored offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` crate's [`Value`] tree.
//! Covers the API surface this repository uses: `to_string`,
//! `to_string_pretty`, `from_str`, `to_value`, and `from_value`.

pub use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A JSON parse or conversion error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl Error {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] describing the first shape mismatch.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(|e| Error::new(e.to_string(), 0))
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for this implementation; kept fallible for serde_json
/// API compatibility.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for this implementation; kept fallible for serde_json
/// API compatibility.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters", p.pos));
    }
    T::from_value(&v).map_err(|e| Error::new(e.to_string(), 0))
}

// --------------------------------------------------------------- printing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` prints the shortest round-trip form; force a
                // decimal point or exponent so it re-parses as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/inf
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

/// Maximum container nesting depth the parser accepts.
///
/// Checkpoint payloads and sweep manifests nest a dozen levels at most;
/// 128 leaves ample headroom while keeping recursion (both parsing and
/// the eventual `Value` drop) bounded, so adversarial input like
/// `"[".repeat(10_000)` yields an [`Error`] instead of a stack
/// overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new("expected a JSON value", self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new(
                format!("nesting deeper than {MAX_DEPTH} levels"),
                self.pos,
            ));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone surrogate", self.pos));
                                }
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(
                                c.ok_or_else(|| Error::new("invalid unicode escape", self.pos))?,
                            );
                            continue; // pos already advanced past hex digits
                        }
                        _ => return Err(Error::new("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    s.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 char. Validate at
                    // most 4 bytes — validating the whole remaining
                    // input here would make parsing quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let prefix = match std::str::from_utf8(rest) {
                        Ok(text) => text,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()]).unwrap()
                        }
                        Err(_) => return Err(Error::new("invalid UTF-8", self.pos)),
                    };
                    let c = prefix.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape", self.pos));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid unicode escape", self.pos))?;
        let v = u32::from_str_radix(text, 16)
            .map_err(|_| Error::new("invalid unicode escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number", start))?;
        if !is_float {
            if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new("invalid number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let v: Value = from_str("[1, -2, 3.5, true, null, \"hi\\n\"]").unwrap();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::UInt(1),
                Value::Int(-2),
                Value::Float(3.5),
                Value::Bool(true),
                Value::Null,
                Value::Str("hi\n".to_string()),
            ])
        );
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn object_order_preserved() {
        let v: Value = from_str(r#"{"z": 1, "a": {"nested": [1, 2]}}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"z":1,"a":{"nested":[1,2]}}"#);
    }

    #[test]
    fn u128_roundtrip() {
        let big = u128::MAX;
        let s = to_string(&big).unwrap();
        let back: u128 = from_str(&s).unwrap();
        assert_eq!(big, back);
    }

    #[test]
    fn float_always_reparses_as_float() {
        let s = to_string(&1.0f64).unwrap();
        assert_eq!(s, "1.0");
        let v: Value = from_str(&s).unwrap();
        assert_eq!(v, Value::Float(1.0));
    }

    #[test]
    fn multibyte_strings_round_trip() {
        // é (2 bytes), → (3 bytes), 🎉 (4 bytes), plus a trailing
        // multi-byte char at end-of-input (exercises the bounded
        // 4-byte decode window at the buffer edge).
        let v: Value = from_str("\"héllo → 🎉\"").unwrap();
        assert_eq!(v, Value::Str("héllo → 🎉".to_string()));
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        let err = from_str::<Value>("\"\u{80}").map(|_| ()).unwrap_err();
        let _ = err; // truncated: unterminated string, not a panic
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // 10k unclosed arrays: the parser must bail at the depth limit
        // long before recursion (or the eventual `Value` drop) can
        // exhaust the stack.
        let bombs = [
            "[".repeat(10_000),
            "{\"k\":".repeat(10_000),
            format!("{}1{}", "[".repeat(10_000), "]".repeat(10_000)),
        ];
        for bomb in &bombs {
            let err = from_str::<Value>(bomb).unwrap_err();
            assert!(err.to_string().contains("nesting"), "{err}");
        }
    }

    #[test]
    fn nesting_within_the_limit_parses() {
        let depth = MAX_DEPTH - 1;
        let s = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        let mut v: Value = from_str(&s).unwrap();
        for _ in 0..depth {
            match v {
                Value::Array(items) => v = items.into_iter().next().unwrap(),
                other => panic!("expected array, got {other:?}"),
            }
        }
        assert_eq!(v, Value::UInt(1));
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(from_str::<Value>(&over).is_err());
    }

    #[test]
    fn pretty_parses_back() {
        let v: Value = from_str(r#"{"a": [1, 2], "b": "x"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }
}

//! Vendored offline stand-in for `rand` 0.8.
//!
//! Implements the subset this repository uses — `StdRng::seed_from_u64`,
//! `Rng::gen`, and `Rng::gen_range` over integer and float ranges — on a
//! xoshiro256++ core seeded through splitmix64. Streams are
//! deterministic per seed but deliberately *not* bit-identical to
//! upstream rand; nothing in the repository depends on upstream
//! streams, only on same-seed reproducibility.

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value of `T` from its standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// The standard distribution marker (uniform over a type).
pub struct Standard;

/// A distribution that can sample values of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64
);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value of `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // bias for huge spans is irrelevant for simulation use.
                let r = rng.next_u64();
                let hi = ((r as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end == <$t>::MAX {
                    return Standard.sample(rng);
                }
                (start..end + 1).sample_single(rng)
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let r = rng.next_u64();
                let hi = ((r as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// A small, fast generator; same core as [`StdRng`] here.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0..100u32)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0..100u32)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u32> = (0..8).map(|_| c.gen_range(0..100u32)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(-2.0..2.0f32);
            assert!((-2.0..2.0).contains(&g));
            let i = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5..5u32);
    }
}

#!/usr/bin/env bash
# Distributed-fleet network chaos soak for sweepd's TCP remote workers.
#
# Proves the distributed-sweep robustness claims end to end against the
# real binaries:
#
#  1. a reference `faults` sweep runs uninterrupted on a single host;
#  2. a remote-only fleet (three workers dialing over TCP) runs the same
#     sweep while the coordinator's deterministic netem injector drops,
#     delays, duplicates, and corrupts frames — including one hard
#     partition that black-holes worker 1 mid-sweep — and one worker is
#     `kill -9`ed while it demonstrably holds a cell lease. The sweep
#     must finish, /metrics must record crash migration, and the
#     artifacts must be byte-identical to the reference;
#  3. the same fleet topology with an *empty* netem scenario must also
#     be a byte-exact no-op (the injector layer is pass-through when no
#     net* directive names a stream).
#
# Usage: scripts/net_chaos.sh [path-to-metanmp-experiments] [path-to-sweepd]
set -euo pipefail

BIN=${1:-./target/release/metanmp-experiments}
BIN=$(readlink -f "$BIN")
SWEEPD=${2:-./target/release/sweepd}
SWEEPD=$(readlink -f "$SWEEPD")
SEED=7

work=$(mktemp -d "${TMPDIR:-/tmp}/metanmp-netchaos.XXXXXX")
DAEMON_PID=""
WORKER_PIDS=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    for w in $WORKER_PIDS; do kill -9 "$w" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

echo "== reference: uninterrupted single-host run =="
mkdir -p "$work/reference"
(cd "$work/reference" && "$BIN" faults --seed "$SEED")
ref="$work/reference/results/faults.json"
[ -s "$ref" ] || { echo "FAIL: reference produced no results/faults.json"; exit 1; }

# Starts a daemon with the given state dir and netem scenario; sets
# DAEMON_PID and the globals `addr` (control plane) / `waddr` (worker
# listener). Remote-only fleet: zero local slots. `--fleet-floor 0`
# disables degradation shedding: the chaos deliberately creates windows
# where every worker is dead or redialing at once, and this soak asserts
# completion, not shedding (shedding has its own tests).
start_daemon() {
    local state=$1 scenario=$2 log=$3
    "$SWEEPD" --listen 127.0.0.1:0 --worker-listen 127.0.0.1:0 \
        --worker-cmd "$BIN" --workers 0 --state-dir "$state" \
        --heartbeat-ms 25 --heartbeat-deadline-ms 1000 \
        --cell-timeout 10 --retry-budget 4 --ckpt-interval 64 \
        --fleet-floor 0 --netem "$scenario" 2>"$log" &
    DAEMON_PID=$!
    addr="" waddr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^sweepd: listening on //p' "$log" | head -n 1)
        waddr=$(sed -n 's/^sweepd: workers on //p' "$log" | head -n 1)
        [ -n "$addr" ] && [ -n "$waddr" ] && break
        kill -0 "$DAEMON_PID" 2>/dev/null || {
            echo "FAIL: sweepd died on startup"; cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] && [ -n "$waddr" ] || {
        echo "FAIL: sweepd never reported its addresses"; cat "$log"; exit 1; }
    echo "  daemon up: control $addr, workers $waddr (pid $DAEMON_PID)"
}

# Launches one remote worker dialing $waddr; appends its pid to
# WORKER_PIDS. Workers name themselves w-tcp-<pid>, which /healthz now
# reports per slot, so a leased slot maps back to an OS pid.
start_worker() {
    local log=$1
    "$BIN" --connect "$waddr" --heartbeat-ms 25 2>"$log" &
    WORKER_PIDS="$WORKER_PIDS $!"
    echo "  worker pid $! dialing $waddr"
    disown $! # suppress job-control noise when the chaos kills it
}

submit() {
    local manifest=$1
    local reply
    reply=$(curl -sf -X POST "http://$addr/sweeps" -d "$manifest")
    case "$reply" in
        '{"id":'*) printf '%s' "$reply" | grep -oE '[0-9]+' ;;
        *) echo "FAIL: POST /sweeps returned: $reply" >&2; exit 1 ;;
    esac
}

wait_status() {
    local id=$1 want=$2 tries=$3 log=$4
    local status=""
    for _ in $(seq 1 "$tries"); do
        local body
        body=$(curl -sf "http://$addr/sweeps/$id" || true)
        status=$(printf '%s' "$body" | grep -oE '"status":"[a-z]+"' | head -n 1 | cut -d'"' -f4 || true)
        [ "$status" = "$want" ] && return 0
        if [ "$status" = "failed" ] || [ "$status" = "shed" ]; then
            echo "FAIL: sweep $id ended as $status: $body"; cat "$log"; exit 1
        fi
        sleep 0.2
    done
    echo "FAIL: sweep $id never reached $want (last: $status)"; cat "$log"; exit 1
}

# ---------------------------------------------------------------------------
# Phase 1: scripted network chaos + kill -9 of a leased worker.
#
# Streams are numbered in registration order, so worker 1 rides stream 0
# (lossy, then hard-partitioned ~1s in: at 40 heartbeats/s the window
# opens around ingress frame 40 and never closes), worker 2 stream 1
# (delay + duplication), worker 3 stream 2 (rare corruption). Once the
# partition opens, no frame worker 1 sends is ever delivered, so a held
# or subsequently granted lease *must* expire and migrate — the
# migration assert below is deterministic, not a race.
# ---------------------------------------------------------------------------
echo "== fleet chaos: netem (drop/delay/dup/corrupt/partition) + kill -9 =="
scenario="$work/chaos.chs1"
cat >"$scenario" <<'EOF'
CHS1
netdrop 0 20
netpart 0 40 1000000000
netdelay 1 50 2
netdup 1 10
netcorrupt 2 2
EOF
state="$work/chaos-state"
log="$work/chaos-sweepd.log"
start_daemon "$state" "$scenario" "$log"

# Filler sweeps (high priority, no finalize) keep the fleet busy while
# the chaos plays out; the measured seed-7 sweep runs at priority 0, so
# its cells land on the already-degraded fleet.
for i in $(seq 1 20); do
    submit "{\"experiment\":\"faults\",\"seed\":$((100 + i)),\"priority\":5,\"finalize\":false}" >/dev/null
done
sweep_id=$(submit "{\"experiment\":\"faults\",\"seed\":$SEED}")
echo "  measured sweep id $sweep_id (plus 20 filler sweeps)"

start_worker "$work/chaos-w1.log"   # stream 0: drop + partition
start_worker "$work/chaos-w2.log"   # stream 1: delay + dup (kill -9 victim)
start_worker "$work/chaos-w3.log"   # stream 2: corrupt

# Kill a worker the moment /healthz shows its slot holding a lease.
# Remote slots report pid 0, but the name field carries the worker's
# self-chosen w-tcp-<pid> identity.
victim=""
for _ in $(seq 1 300); do
    health=$(curl -sf "http://$addr/healthz" || true)
    victim=$(printf '%s' "$health" \
        | grep -oE '"name":"w-tcp-[0-9]+","alive":true,"pid":0,"restarts":[0-9]+,"lease":"[^"]+"' \
        | head -n 1 | grep -oE 'w-tcp-[0-9]+' | grep -oE '[0-9]+' || true)
    [ -n "$victim" ] && break
    sleep 0.05
done
[ -n "$victim" ] || { echo "FAIL: no remote worker ever held a lease"; cat "$log"; exit 1; }
kill -9 "$victim"
echo "  SIGKILLed remote worker pid $victim while it held a lease"

wait_status "$sweep_id" done 600 "$log"
echo "  measured sweep finished despite partition, chaos, and the kill"

metrics=$(curl -sf "http://$addr/metrics" || true)
if ! printf '%s' "$metrics" | grep -q 'sweepd\.cells\.migrated'; then
    echo "FAIL: partition + kill produced no crash migration"
    printf '%s\n' "$metrics"; cat "$log"; exit 1
fi
echo "  crash migration confirmed in /metrics"

curl -sf -X POST "http://$addr/shutdown" >/dev/null
drained=0
wait "$DAEMON_PID" || drained=$?
DAEMON_PID=""
if [ "$drained" -ne 0 ]; then
    echo "FAIL: sweepd drained with exit $drained, expected 0"
    cat "$log"; exit 1
fi

chaos_out="$state/sweep-$sweep_id/results/faults.json"
[ -s "$chaos_out" ] || { echo "FAIL: chaos sweep produced no results/faults.json"; exit 1; }
if ! cmp "$ref" "$chaos_out"; then
    echo "FAIL: chaos-run results differ from the uninterrupted reference"
    exit 1
fi
echo "PASS: chaos-run artifacts are byte-identical to the reference"

# ---------------------------------------------------------------------------
# Phase 2: an empty netem scenario must be a byte-exact no-op.
# ---------------------------------------------------------------------------
echo "== fleet control: empty netem scenario is a no-op =="
printf 'CHS1\n' >"$work/empty.chs1"
state="$work/noop-state"
log="$work/noop-sweepd.log"
start_daemon "$state" "$work/empty.chs1" "$log"
sweep_id=$(submit "{\"experiment\":\"faults\",\"seed\":$SEED}")
start_worker "$work/noop-w1.log"
wait_status "$sweep_id" done 300 "$log"

curl -sf -X POST "http://$addr/shutdown" >/dev/null
drained=0
wait "$DAEMON_PID" || drained=$?
DAEMON_PID=""
[ "$drained" -eq 0 ] || { echo "FAIL: no-op daemon drained with exit $drained"; cat "$log"; exit 1; }

noop_out="$state/sweep-$sweep_id/results/faults.json"
[ -s "$noop_out" ] || { echo "FAIL: no-op sweep produced no results/faults.json"; exit 1; }
if ! cmp "$ref" "$noop_out"; then
    echo "FAIL: empty-netem run differs from the reference"
    exit 1
fi
echo "PASS: empty netem scenario is byte-exact against the reference"

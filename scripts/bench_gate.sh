#!/usr/bin/env bash
# Kernel perf-regression gate.
#
# Re-measures every named hot path with the kernel benchmark and fails
# when any path's scalar/auto speedup ratio falls more than 10% below
# the committed BENCH_kernels.json baseline (beyond the noise floor —
# see `kernel-bench --gate` for the exact trip rule). Gating on the
# speedup *ratio* rather than wall-clock keeps the gate host-portable:
# a slower CI machine slows both sides of the ratio.
#
# Hosts without AVX2 record `variant: "scalar"` and skip the ratio
# comparison against an avx2 baseline instead of failing.
#
# Usage: scripts/bench_gate.sh [path-to-kernel-bench] [extra gate args]
#   e.g. scripts/bench_gate.sh                      # build + gate
#        scripts/bench_gate.sh ./target/release/kernel-bench \
#            --handicap project_batch:1.5           # must FAIL (self-test)
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${1:-}
if [ -z "$BIN" ]; then
    cargo build --release -p bench --bin kernel-bench
    BIN=./target/release/kernel-bench
else
    shift
fi

"$BIN" --check BENCH_kernels.json
exec "$BIN" --gate BENCH_kernels.json "$@"

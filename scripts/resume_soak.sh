#!/usr/bin/env bash
# Kill-and-resume soak for the resumable sweep runner and the sweepd
# service daemon.
#
# Proves the headline robustness claims end to end with real signals:
#
#  1. a `faults` sweep is SIGINTed twice mid-run, resumed each time, and
#     the final results/faults.json must be byte-identical to an
#     uninterrupted reference run;
#  2. the same sweep is submitted to a live `sweepd` fleet, one worker
#     is `kill -9`ed while it holds a cell lease, and the finalized
#     artifacts must still be byte-identical to the reference.
#
# Usage: scripts/resume_soak.sh [path-to-metanmp-experiments] [path-to-sweepd]
set -euo pipefail

BIN=${1:-./target/release/metanmp-experiments}
BIN=$(readlink -f "$BIN")
SWEEPD=${2:-./target/release/sweepd}
SEED=7

work=$(mktemp -d "${TMPDIR:-/tmp}/metanmp-soak.XXXXXX")
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT
mkdir -p "$work/reference" "$work/sweep-run"

echo "== reference: uninterrupted run =="
(cd "$work/reference" && "$BIN" faults --seed "$SEED")
ref="$work/reference/results/faults.json"
[ -s "$ref" ] || { echo "FAIL: reference produced no results/faults.json"; exit 1; }

# Launch a sweep, SIGINT it after a grace period, and require the
# "interrupted, resumable" exit code (3). The process handles the signal
# cooperatively: it finishes checkpointing before exiting, so waiting on
# the pid is enough to know the sweep directory is consistent.
interrupt_once() {
    local resume_flag=$1
    cd "$work/sweep-run"
    "$BIN" faults --seed "$SEED" "$resume_flag" sweep --ckpt-interval 64 &
    local pid=$!
    sleep 2
    kill -INT "$pid" 2>/dev/null || true
    local status=0
    wait "$pid" || status=$?
    cd - >/dev/null
    if [ "$status" -eq 0 ]; then
        # The run beat the signal. That's not a soak failure, but it means
        # this round exercised nothing; report it so slow-machine tuning
        # (sleep / --ckpt-interval) can be revisited.
        echo "  (run completed before SIGINT landed; round skipped)"
        return 10
    fi
    if [ "$status" -ne 3 ]; then
        echo "FAIL: interrupted sweep exited with $status, expected 3 (resumable)"
        exit 1
    fi
    [ -f "$work/sweep-run/sweep/faults.manifest.jsonl" ] || {
        echo "FAIL: interrupted sweep left no manifest behind"
        exit 1
    }
    echo "  interrupted cleanly (exit 3), manifest present"
    return 0
}

echo "== round 1: SIGINT a fresh sweep =="
first=0
interrupt_once --sweep-dir || first=$?

if [ "$first" -eq 0 ]; then
    echo "== round 2: SIGINT the resumed sweep =="
    interrupt_once --resume || true
fi

echo "== final: resume to completion =="
(cd "$work/sweep-run" && "$BIN" faults --seed "$SEED" --resume sweep)
out="$work/sweep-run/results/faults.json"
[ -s "$out" ] || { echo "FAIL: resumed sweep produced no results/faults.json"; exit 1; }

echo "== compare digests =="
if ! cmp "$ref" "$out"; then
    echo "FAIL: resumed results differ from the uninterrupted reference"
    exit 1
fi
echo "PASS: resumed results/faults.json is byte-identical to the reference"

# ---------------------------------------------------------------------------
# Phase 2: sweepd chaos — kill -9 a leased worker, require crash migration
# to finish the sweep with byte-identical artifacts.
# ---------------------------------------------------------------------------
if [ ! -x "$SWEEPD" ]; then
    echo "== sweepd chaos: SKIPPED ($SWEEPD not built) =="
    exit 0
fi
SWEEPD=$(readlink -f "$SWEEPD")
echo "== sweepd chaos: kill -9 a worker holding a lease =="

state="$work/sweepd-state"
log="$work/sweepd.log"
"$SWEEPD" --listen 127.0.0.1:0 --worker-cmd "$BIN" --workers 2 \
    --state-dir "$state" --heartbeat-ms 50 --heartbeat-deadline-ms 800 \
    --ckpt-interval 64 2>"$log" &
DAEMON_PID=$!

# The daemon reports its bound address (port 0 above) on stderr.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^sweepd: listening on //p' "$log" | head -n 1)
    [ -n "$addr" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { echo "FAIL: sweepd died on startup"; cat "$log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "FAIL: sweepd never reported a bound address"; cat "$log"; exit 1; }
echo "  daemon up at $addr (pid $DAEMON_PID)"

submitted=$(curl -sf -X POST "http://$addr/sweeps" \
    -d "{\"experiment\":\"faults\",\"seed\":$SEED}")
case "$submitted" in
    '{"id":'*) echo "  sweep accepted: $submitted" ;;
    *) echo "FAIL: POST /sweeps returned: $submitted"; exit 1 ;;
esac
sweep_id=$(printf '%s' "$submitted" | grep -oE '[0-9]+')

# Wait until a worker actually holds a cell lease, then SIGKILL it.
victim=""
for _ in $(seq 1 200); do
    health=$(curl -sf "http://$addr/healthz" || true)
    victim=$(printf '%s' "$health" \
        | grep -oE '"pid":[0-9]+,"restarts":[0-9]+,"lease":"[^"]+"' \
        | head -n 1 | grep -oE '"pid":[0-9]+' | cut -d: -f2)
    [ -n "$victim" ] && break
    sleep 0.1
done
[ -n "$victim" ] || { echo "FAIL: no worker ever held a lease"; cat "$log"; exit 1; }
kill -9 "$victim"
echo "  SIGKILLed worker pid $victim mid-lease"

# The sweep must still run to completion via crash migration.
status=""
for _ in $(seq 1 600); do
    body=$(curl -sf "http://$addr/sweeps/$sweep_id" || true)
    status=$(printf '%s' "$body" | grep -oE '"status":"[a-z]+"' | head -n 1 | cut -d'"' -f4)
    [ "$status" = "done" ] && break
    if [ "$status" = "failed" ] || [ "$status" = "shed" ]; then
        echo "FAIL: sweep ended as $status: $body"
        cat "$log"
        exit 1
    fi
    sleep 0.2
done
[ "$status" = "done" ] || { echo "FAIL: sweep never finished (last: $status)"; cat "$log"; exit 1; }
echo "  sweep finished despite the kill"

metrics=$(curl -sf "http://$addr/metrics" || true)
if printf '%s' "$metrics" | grep -q 'sweepd\.cells\.migrated'; then
    echo "  crash migration confirmed in /metrics"
else
    echo "  note: kill landed between leases (no migration recorded); artifacts still checked"
fi

curl -sf -X POST "http://$addr/shutdown" >/dev/null
drained=0
wait "$DAEMON_PID" || drained=$?
DAEMON_PID=""
if [ "$drained" -ne 0 ]; then
    echo "FAIL: sweepd drained with exit $drained, expected 0 (all sweeps finished)"
    cat "$log"
    exit 1
fi

echo "== sweepd chaos: compare digests =="
chaos_out="$state/sweep-$sweep_id/results/faults.json"
[ -s "$chaos_out" ] || { echo "FAIL: chaos sweep produced no results/faults.json"; exit 1; }
if ! cmp "$ref" "$chaos_out"; then
    echo "FAIL: chaos-run results differ from the uninterrupted reference"
    exit 1
fi
for side in md; do
    a="$work/reference/results/faults.$side"
    b="$state/sweep-$sweep_id/results/faults.$side"
    if [ -f "$a" ] && ! cmp "$a" "$b"; then
        echo "FAIL: chaos-run results/faults.$side differs from the reference"
        exit 1
    fi
done
echo "PASS: chaos-run artifacts are byte-identical to the reference"

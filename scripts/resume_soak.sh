#!/usr/bin/env bash
# Kill-and-resume soak for the resumable sweep runner.
#
# Proves the headline robustness claim end to end with real signals:
# a `faults` sweep is SIGINTed twice mid-run, resumed each time, and the
# final results/faults.json must be byte-identical to an uninterrupted
# reference run.
#
# Usage: scripts/resume_soak.sh [path-to-metanmp-experiments]
set -euo pipefail

BIN=${1:-./target/release/metanmp-experiments}
BIN=$(readlink -f "$BIN")
SEED=7

work=$(mktemp -d "${TMPDIR:-/tmp}/metanmp-soak.XXXXXX")
trap 'rm -rf "$work"' EXIT
mkdir -p "$work/reference" "$work/sweep-run"

echo "== reference: uninterrupted run =="
(cd "$work/reference" && "$BIN" faults --seed "$SEED")
ref="$work/reference/results/faults.json"
[ -s "$ref" ] || { echo "FAIL: reference produced no results/faults.json"; exit 1; }

# Launch a sweep, SIGINT it after a grace period, and require the
# "interrupted, resumable" exit code (3). The process handles the signal
# cooperatively: it finishes checkpointing before exiting, so waiting on
# the pid is enough to know the sweep directory is consistent.
interrupt_once() {
    local resume_flag=$1
    cd "$work/sweep-run"
    "$BIN" faults --seed "$SEED" "$resume_flag" sweep --ckpt-interval 64 &
    local pid=$!
    sleep 2
    kill -INT "$pid" 2>/dev/null || true
    local status=0
    wait "$pid" || status=$?
    cd - >/dev/null
    if [ "$status" -eq 0 ]; then
        # The run beat the signal. That's not a soak failure, but it means
        # this round exercised nothing; report it so slow-machine tuning
        # (sleep / --ckpt-interval) can be revisited.
        echo "  (run completed before SIGINT landed; round skipped)"
        return 10
    fi
    if [ "$status" -ne 3 ]; then
        echo "FAIL: interrupted sweep exited with $status, expected 3 (resumable)"
        exit 1
    fi
    [ -f "$work/sweep-run/sweep/faults.manifest.jsonl" ] || {
        echo "FAIL: interrupted sweep left no manifest behind"
        exit 1
    }
    echo "  interrupted cleanly (exit 3), manifest present"
    return 0
}

echo "== round 1: SIGINT a fresh sweep =="
first=0
interrupt_once --sweep-dir || first=$?

if [ "$first" -eq 0 ]; then
    echo "== round 2: SIGINT the resumed sweep =="
    interrupt_once --resume || true
fi

echo "== final: resume to completion =="
(cd "$work/sweep-run" && "$BIN" faults --seed "$SEED" --resume sweep)
out="$work/sweep-run/results/faults.json"
[ -s "$out" ] || { echo "FAIL: resumed sweep produced no results/faults.json"; exit 1; }

echo "== compare digests =="
if ! cmp "$ref" "$out"; then
    echo "FAIL: resumed results differ from the uninterrupted reference"
    exit 1
fi
echo "PASS: resumed results/faults.json is byte-identical to the reference"

//! Cross-validation of the closed-form estimator against the
//! functional simulator: identical operation counts, and cycle/energy
//! estimates within a small factor. Agreement here is what licenses
//! using the estimator on web-scale graphs the functional simulator
//! cannot walk.

use hetgraph::datasets::{generate, DatasetId, GeneratorConfig};
use hgnn::{FeatureStore, HiddenFeatures, ModelKind, OpCounters, Projection};
use nmp::{estimate, CommPolicy, FunctionalSim, NmpConfig};

fn hidden_for(ds: &hetgraph::datasets::Dataset, dim: usize) -> HiddenFeatures {
    let fs = FeatureStore::random(&ds.graph, 5);
    let proj = Projection::random(&ds.graph, dim, 5);
    let mut c = OpCounters::default();
    proj.project(&ds.graph, &fs, &mut c).unwrap()
}

fn config(dim: usize) -> NmpConfig {
    NmpConfig {
        hidden_dim: dim,
        ..NmpConfig::default()
    }
}

#[test]
fn counts_match_exactly() {
    for id in [DatasetId::Imdb, DatasetId::Dblp, DatasetId::Lastfm] {
        let ds = generate(id, GeneratorConfig::at_scale(0.02));
        let hidden = hidden_for(&ds, 16);
        for kind in ModelKind::ALL {
            let f = FunctionalSim::new(config(16))
                .run(&ds.graph, &hidden, kind, &ds.metapaths)
                .unwrap();
            let e = estimate(&ds.graph, kind, &ds.metapaths, &config(16)).unwrap();
            assert_eq!(
                f.report.counts.instances, e.counts.instances,
                "{id:?}/{kind:?} instance counts"
            );
            assert_eq!(
                f.report.counts.aggregations, e.counts.aggregations,
                "{id:?}/{kind:?} aggregation counts"
            );
            assert_eq!(
                f.report.counts.inter_instance_ops, e.counts.inter_instance_ops,
                "{id:?}/{kind:?} inter-instance counts"
            );
        }
    }
}

#[test]
fn timing_within_a_small_factor() {
    let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.05));
    let hidden = hidden_for(&ds, 16);
    let f = FunctionalSim::new(config(16))
        .run(&ds.graph, &hidden, ModelKind::Magnn, &ds.metapaths)
        .unwrap();
    let e = estimate(&ds.graph, ModelKind::Magnn, &ds.metapaths, &config(16)).unwrap();
    let ratio = f.report.seconds / e.seconds;
    assert!(
        (0.25..4.0).contains(&ratio),
        "functional {} vs estimate {} (ratio {ratio})",
        f.report.seconds,
        e.seconds
    );
}

#[test]
fn energy_within_a_small_factor() {
    let ds = generate(DatasetId::Lastfm, GeneratorConfig::at_scale(0.02));
    let hidden = hidden_for(&ds, 16);
    let f = FunctionalSim::new(config(16))
        .run(&ds.graph, &hidden, ModelKind::Magnn, &ds.metapaths)
        .unwrap();
    let e = estimate(&ds.graph, ModelKind::Magnn, &ds.metapaths, &config(16)).unwrap();
    let ratio = f.report.energy.total_pj() / e.energy.total_pj();
    assert!(
        (0.2..5.0).contains(&ratio),
        "functional {} vs estimate {} (ratio {ratio})",
        f.report.energy.total_pj(),
        e.energy.total_pj()
    );
}

#[test]
fn both_simulators_agree_on_policy_ordering() {
    let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.05));
    let hidden = hidden_for(&ds, 16);
    let cfg_b = config(16);
    let cfg_n = config(16).with_comm(CommPolicy::Naive);
    let f_b = FunctionalSim::new(cfg_b)
        .run(&ds.graph, &hidden, ModelKind::Magnn, &ds.metapaths)
        .unwrap();
    let f_n = FunctionalSim::new(cfg_n)
        .run(&ds.graph, &hidden, ModelKind::Magnn, &ds.metapaths)
        .unwrap();
    let e_b = estimate(&ds.graph, ModelKind::Magnn, &ds.metapaths, &cfg_b).unwrap();
    let e_n = estimate(&ds.graph, ModelKind::Magnn, &ds.metapaths, &cfg_n).unwrap();
    assert!(f_b.report.seconds <= f_n.report.seconds);
    assert!(e_b.seconds <= e_n.seconds);
}

#[test]
fn both_simulators_agree_on_reuse_ordering() {
    let ds = generate(DatasetId::Dblp, GeneratorConfig::at_scale(0.02));
    let hidden = hidden_for(&ds, 16);
    let with = config(16);
    let without = NmpConfig {
        reuse: false,
        ..config(16)
    };
    let f_w = FunctionalSim::new(with)
        .run(&ds.graph, &hidden, ModelKind::Magnn, &ds.metapaths)
        .unwrap();
    let f_o = FunctionalSim::new(without)
        .run(&ds.graph, &hidden, ModelKind::Magnn, &ds.metapaths)
        .unwrap();
    let e_w = estimate(&ds.graph, ModelKind::Magnn, &ds.metapaths, &with).unwrap();
    let e_o = estimate(&ds.graph, ModelKind::Magnn, &ds.metapaths, &without).unwrap();
    assert!(f_w.report.counts.aggregations < f_o.report.counts.aggregations);
    assert!(e_w.counts.aggregations < e_o.counts.aggregations);
    assert_eq!(f_w.report.counts.aggregations, e_w.counts.aggregations);
    assert_eq!(f_o.report.counts.aggregations, e_o.counts.aggregations);
}

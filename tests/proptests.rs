//! Property-based tests on the core invariants of the reproduction:
//! instance generation equivalences, engine agreement, DRAM timing
//! sanity, and ISA roundtrips — all over randomized inputs.

use hetgraph::cartesian::{center_products, walk_prefix_tree, InstanceStream, WalkEvent};
use hetgraph::instances::{count_instances, count_instances_per_start, enumerate_instances};
use hetgraph::{GraphSchema, HeteroGraph, HeteroGraphBuilder, Metapath, Vertex, VertexId};
use hgnn::engine::{InferenceEngine, MaterializedEngine, OnTheFlyEngine};
use hgnn::{FeatureStore, ModelConfig, ModelKind};
use proptest::prelude::*;

/// A random 3-type heterogeneous graph (A-B and B-C relations).
fn arb_graph() -> impl Strategy<Value = HeteroGraph> {
    let counts = (1u32..6, 1u32..6, 1u32..6);
    (counts, proptest::collection::vec((0u32..6, 0u32..6), 0..24),
     proptest::collection::vec((0u32..6, 0u32..6), 0..24))
        .prop_map(|((na, nb, nc), ab, bc)| {
            let mut schema = GraphSchema::new();
            let a = schema.add_vertex_type("A", 'A', 4);
            let b = schema.add_vertex_type("B", 'B', 4);
            let c = schema.add_vertex_type("C", 'C', 4);
            schema.add_relation(a, b);
            schema.add_relation(b, c);
            let mut builder = HeteroGraphBuilder::new(schema);
            builder.set_vertex_count(a, na);
            builder.set_vertex_count(b, nb);
            builder.set_vertex_count(c, nc);
            for (x, y) in ab {
                let _ = builder.add_edge(
                    Vertex::new(a, VertexId::new(x % na)),
                    Vertex::new(b, VertexId::new(y % nb)),
                );
            }
            for (x, y) in bc {
                let _ = builder.add_edge(
                    Vertex::new(b, VertexId::new(x % nb)),
                    Vertex::new(c, VertexId::new(y % nc)),
                );
            }
            builder.finish()
        })
}

fn metapaths(graph: &HeteroGraph) -> Vec<Metapath> {
    ["ABA", "ABC", "ABCBA", "BCB"]
        .iter()
        .map(|m| Metapath::parse(m, graph.schema()).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counting_equals_enumeration_equals_streaming(graph in arb_graph()) {
        for mp in metapaths(&graph) {
            let counted = count_instances(&graph, &mp).unwrap();
            let enumerated = enumerate_instances(&graph, &mp, usize::MAX).unwrap();
            let streamed = InstanceStream::new(&graph, &mp).unwrap().count();
            prop_assert_eq!(counted, enumerated.len() as u128);
            prop_assert_eq!(counted, streamed as u128);
        }
    }

    #[test]
    fn per_start_counts_sum_to_total(graph in arb_graph()) {
        for mp in metapaths(&graph) {
            let per_start = count_instances_per_start(&graph, &mp).unwrap();
            let total: u128 = per_start.iter().sum();
            prop_assert_eq!(total, count_instances(&graph, &mp).unwrap());
        }
    }

    #[test]
    fn center_products_cover_two_hop_instances(graph in arb_graph()) {
        for name in ["ABA", "ABC"] {
            let mp = Metapath::parse(name, graph.schema()).unwrap();
            let via_products: usize = center_products(&graph, &mp)
                .unwrap()
                .iter()
                .map(|p| p.instance_count())
                .sum();
            prop_assert_eq!(via_products as u128, count_instances(&graph, &mp).unwrap());
        }
    }

    #[test]
    fn walk_events_balance_and_count_leaves(graph in arb_graph()) {
        let mp = Metapath::parse("ABCBA", graph.schema()).unwrap();
        let per_start = count_instances_per_start(&graph, &mp).unwrap();
        for (s, &expected) in per_start.iter().enumerate() {
            let mut depth = 0i64;
            let mut leaves = 0u128;
            walk_prefix_tree(&graph, &mp, VertexId::new(s as u32), |ev| match ev {
                WalkEvent::Enter(..) => depth += 1,
                WalkEvent::Exit(..) => depth -= 1,
                WalkEvent::Leaf => leaves += 1,
            })
            .unwrap();
            prop_assert_eq!(depth, 0);
            prop_assert_eq!(leaves, expected);
        }
    }

    #[test]
    fn engines_agree_on_random_graphs(graph in arb_graph(), seed in 0u64..1000) {
        let mps = vec![Metapath::parse("ABA", graph.schema()).unwrap()];
        if count_instances(&graph, &mps[0]).unwrap() == 0 {
            return Ok(());
        }
        let features = FeatureStore::random(&graph, seed);
        for kind in ModelKind::ALL {
            let config = ModelConfig::new(kind)
                .with_hidden_dim(4)
                .with_attention(false)
                .with_seed(seed);
            let a = MaterializedEngine.run(&graph, &features, &config, &mps).unwrap();
            let b = OnTheFlyEngine.run(&graph, &features, &config, &mps).unwrap();
            prop_assert!(a.embeddings.max_abs_diff(&b.embeddings) < 1e-4);
            prop_assert!(
                b.profile.performed_aggregations <= a.profile.performed_aggregations
            );
        }
    }

    #[test]
    fn engines_agree_with_attention(graph in arb_graph(), seed in 0u64..500) {
        let mps = vec![Metapath::parse("ABCBA", graph.schema()).unwrap()];
        if count_instances(&graph, &mps[0]).unwrap() == 0 {
            return Ok(());
        }
        let features = FeatureStore::random(&graph, seed);
        for kind in [ModelKind::Magnn, ModelKind::Han] {
            let config = ModelConfig::new(kind)
                .with_hidden_dim(4)
                .with_attention(true)
                .with_seed(seed);
            let a = MaterializedEngine.run(&graph, &features, &config, &mps).unwrap();
            let b = OnTheFlyEngine.run(&graph, &features, &config, &mps).unwrap();
            prop_assert!(a.embeddings.max_abs_diff(&b.embeddings) < 1e-4);
        }
    }

    #[test]
    fn dram_completions_are_sane(
        addrs in proptest::collection::vec(0u64..(1 << 22), 1..64),
        arrivals in proptest::collection::vec(0u64..200, 1..64),
    ) {
        use dramsim::{DramConfig, MemorySystem, Request};
        let mut sys = MemorySystem::new(DramConfig::default());
        let n = addrs.len().min(arrivals.len());
        for i in 0..n {
            let req = if i % 3 == 0 {
                Request::write(addrs[i], 64)
            } else if i % 3 == 1 {
                Request::local_read(addrs[i], 64)
            } else {
                Request::read(addrs[i], 64)
            };
            sys.enqueue(req.at_cycle(arrivals[i]));
        }
        let report = sys.service_all();
        prop_assert_eq!(report.completions.len(), n);
        for (i, c) in report.completions.iter().enumerate() {
            prop_assert!(c.data_start >= arrivals[i]);
            prop_assert!(c.finish > c.data_start);
            prop_assert!(c.finish <= report.stats.elapsed_cycles);
        }
        prop_assert_eq!(report.stats.reads + report.stats.writes, n as u64);
        prop_assert_eq!(
            report.stats.row_hits + report.stats.row_misses,
            n as u64
        );
    }

    #[test]
    fn isa_roundtrips(vertex in any::<u32>(), addr in any::<u32>(), mask in 0u8..16) {
        use nmp::isa::NmpInstruction;
        let instructions = [
            NmpInstruction::ConfigSize { feature_length: vertex },
            NmpInstruction::Evoke { vertex, feature_addr: addr },
            NmpInstruction::Broadcast { mask, addr },
            NmpInstruction::BroadcastCore { vertex, mask, addr },
            NmpInstruction::Aggregate { vertex, agg_addr: addr },
            NmpInstruction::InterInstanceAgg { vertex, output_addr: addr },
            NmpInstruction::Copy { agg_addr: vertex, dst_addr: addr },
            NmpInstruction::ConfigWeight { weight: addr },
            NmpInstruction::InterPathAgg { path1_addr: vertex, path2_addr: addr },
        ];
        for inst in instructions {
            prop_assert_eq!(NmpInstruction::decode(inst.encode()).unwrap(), inst);
        }
    }

    #[test]
    fn feature_cache_matches_reference_lru(
        accesses in proptest::collection::vec((0u8..2, 0u32..40), 1..200),
        lines in 2usize..12,
    ) {
        use nmp::buffers::FeatureCache;
        let line_bytes = 64;
        let mut cache = FeatureCache::new(lines * line_bytes, line_bytes);
        // Reference model: a Vec kept in LRU order.
        let mut reference: Vec<(u8, u32)> = Vec::new();
        for (ty, id) in accesses {
            let hit = cache.access(ty, id);
            let ref_hit = reference.contains(&(ty, id));
            prop_assert_eq!(hit, ref_hit, "cache diverged on ({}, {})", ty, id);
            reference.retain(|&k| k != (ty, id));
            reference.push((ty, id));
            if reference.len() > lines {
                reference.remove(0);
            }
        }
    }

    #[test]
    fn carpu_generates_exactly_the_product(
        left in proptest::collection::vec(any::<u32>(), 0..12),
        right in proptest::collection::vec(any::<u32>(), 0..12),
        center in any::<u32>(),
        capacity in 1usize..8,
    ) {
        use nmp::units::CarPu;
        let unit = CarPu::new(capacity);
        let run = unit.generate(&left, center, &right);
        prop_assert_eq!(run.instances.len(), left.len() * right.len());
        // Every pair appears exactly once.
        let mut pairs: Vec<(u32, u32)> =
            run.instances.iter().map(|i| (i.left, i.right)).collect();
        pairs.sort_unstable();
        let mut expected: Vec<(u32, u32)> = left
            .iter()
            .flat_map(|&l| right.iter().map(move |&r| (l, r)))
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(pairs, expected);
    }
}

//! Randomized-input tests on the core invariants of the reproduction:
//! instance generation equivalences, engine agreement, DRAM timing
//! sanity, and ISA roundtrips.
//!
//! Originally written against `proptest`; the build environment has no
//! network access to crates.io, so each property now draws its cases
//! from a seeded `StdRng` (vendored, deterministic) instead of a
//! shrinking strategy. Coverage is equivalent — 64 cases per property
//! over the same input distributions — and failures are reproducible
//! from the printed case seed.

use hetgraph::cartesian::{center_products, walk_prefix_tree, InstanceStream, WalkEvent};
use hetgraph::instances::{count_instances, count_instances_per_start, enumerate_instances};
use hetgraph::{GraphSchema, HeteroGraph, HeteroGraphBuilder, Metapath, Vertex, VertexId};
use hgnn::engine::{InferenceEngine, MaterializedEngine, OnTheFlyEngine};
use hgnn::{FeatureStore, ModelConfig, ModelKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// Runs `body` once per case with a per-case deterministic RNG and a
/// seed label for failure reproduction.
fn for_each_case(tag: u64, body: impl Fn(&mut StdRng, u64)) {
    for case in 0..CASES {
        let seed = tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case;
        let mut rng = StdRng::seed_from_u64(seed);
        body(&mut rng, seed);
    }
}

/// A random 3-type heterogeneous graph (A-B and B-C relations), same
/// distribution as the original proptest strategy.
fn rand_graph(rng: &mut StdRng) -> HeteroGraph {
    let na = rng.gen_range(1u32..6);
    let nb = rng.gen_range(1u32..6);
    let nc = rng.gen_range(1u32..6);
    let mut schema = GraphSchema::new();
    let a = schema.add_vertex_type("A", 'A', 4);
    let b = schema.add_vertex_type("B", 'B', 4);
    let c = schema.add_vertex_type("C", 'C', 4);
    schema.add_relation(a, b);
    schema.add_relation(b, c);
    let mut builder = HeteroGraphBuilder::new(schema);
    builder.set_vertex_count(a, na);
    builder.set_vertex_count(b, nb);
    builder.set_vertex_count(c, nc);
    for _ in 0..rng.gen_range(0usize..24) {
        let (x, y) = (rng.gen_range(0u32..6), rng.gen_range(0u32..6));
        let _ = builder.add_edge(
            Vertex::new(a, VertexId::new(x % na)),
            Vertex::new(b, VertexId::new(y % nb)),
        );
    }
    for _ in 0..rng.gen_range(0usize..24) {
        let (x, y) = (rng.gen_range(0u32..6), rng.gen_range(0u32..6));
        let _ = builder.add_edge(
            Vertex::new(b, VertexId::new(x % nb)),
            Vertex::new(c, VertexId::new(y % nc)),
        );
    }
    builder.finish()
}

fn metapaths(graph: &HeteroGraph) -> Vec<Metapath> {
    ["ABA", "ABC", "ABCBA", "BCB"]
        .iter()
        .map(|m| Metapath::parse(m, graph.schema()).unwrap())
        .collect()
}

#[test]
fn counting_equals_enumeration_equals_streaming() {
    for_each_case(1, |rng, seed| {
        let graph = rand_graph(rng);
        for mp in metapaths(&graph) {
            let counted = count_instances(&graph, &mp).unwrap();
            let enumerated = enumerate_instances(&graph, &mp, usize::MAX).unwrap();
            let streamed = InstanceStream::new(&graph, &mp).unwrap().count();
            assert_eq!(counted, enumerated.len() as u128, "seed {seed}");
            assert_eq!(counted, streamed as u128, "seed {seed}");
        }
    });
}

#[test]
fn per_start_counts_sum_to_total() {
    for_each_case(2, |rng, seed| {
        let graph = rand_graph(rng);
        for mp in metapaths(&graph) {
            let per_start = count_instances_per_start(&graph, &mp).unwrap();
            let total: u128 = per_start.iter().sum();
            assert_eq!(total, count_instances(&graph, &mp).unwrap(), "seed {seed}");
        }
    });
}

#[test]
fn center_products_cover_two_hop_instances() {
    for_each_case(3, |rng, seed| {
        let graph = rand_graph(rng);
        for name in ["ABA", "ABC"] {
            let mp = Metapath::parse(name, graph.schema()).unwrap();
            let via_products: usize = center_products(&graph, &mp)
                .unwrap()
                .iter()
                .map(|p| p.instance_count())
                .sum();
            assert_eq!(
                via_products as u128,
                count_instances(&graph, &mp).unwrap(),
                "seed {seed}"
            );
        }
    });
}

#[test]
fn walk_events_balance_and_count_leaves() {
    for_each_case(4, |rng, seed| {
        let graph = rand_graph(rng);
        let mp = Metapath::parse("ABCBA", graph.schema()).unwrap();
        let per_start = count_instances_per_start(&graph, &mp).unwrap();
        for (s, &expected) in per_start.iter().enumerate() {
            let mut depth = 0i64;
            let mut leaves = 0u128;
            walk_prefix_tree(&graph, &mp, VertexId::new(s as u32), |ev| match ev {
                WalkEvent::Enter(..) => depth += 1,
                WalkEvent::Exit(..) => depth -= 1,
                WalkEvent::Leaf => leaves += 1,
            })
            .unwrap();
            assert_eq!(depth, 0, "seed {seed}");
            assert_eq!(leaves, expected, "seed {seed}");
        }
    });
}

#[test]
fn engines_agree_on_random_graphs() {
    for_each_case(5, |rng, case_seed| {
        let graph = rand_graph(rng);
        let seed = rng.gen_range(0u64..1000);
        let mps = vec![Metapath::parse("ABA", graph.schema()).unwrap()];
        if count_instances(&graph, &mps[0]).unwrap() == 0 {
            return;
        }
        let features = FeatureStore::random(&graph, seed);
        for kind in ModelKind::ALL {
            let config = ModelConfig::new(kind)
                .with_hidden_dim(4)
                .with_attention(false)
                .with_seed(seed);
            let a = MaterializedEngine
                .run(&graph, &features, &config, &mps)
                .unwrap();
            let b = OnTheFlyEngine
                .run(&graph, &features, &config, &mps)
                .unwrap();
            assert!(
                a.embeddings.max_abs_diff(&b.embeddings) < 1e-4,
                "seed {case_seed}"
            );
            assert!(
                b.profile.performed_aggregations <= a.profile.performed_aggregations,
                "seed {case_seed}"
            );
        }
    });
}

#[test]
fn engines_agree_with_attention() {
    for_each_case(6, |rng, case_seed| {
        let graph = rand_graph(rng);
        let seed = rng.gen_range(0u64..500);
        let mps = vec![Metapath::parse("ABCBA", graph.schema()).unwrap()];
        if count_instances(&graph, &mps[0]).unwrap() == 0 {
            return;
        }
        let features = FeatureStore::random(&graph, seed);
        for kind in [ModelKind::Magnn, ModelKind::Han] {
            let config = ModelConfig::new(kind)
                .with_hidden_dim(4)
                .with_attention(true)
                .with_seed(seed);
            let a = MaterializedEngine
                .run(&graph, &features, &config, &mps)
                .unwrap();
            let b = OnTheFlyEngine
                .run(&graph, &features, &config, &mps)
                .unwrap();
            assert!(
                a.embeddings.max_abs_diff(&b.embeddings) < 1e-4,
                "seed {case_seed}"
            );
        }
    });
}

#[test]
fn dram_completions_are_sane() {
    use dramsim::{DramConfig, MemorySystem, Request};
    for_each_case(7, |rng, seed| {
        let n = rng.gen_range(1usize..64);
        let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..(1 << 22))).collect();
        let arrivals: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..200)).collect();
        let mut sys = MemorySystem::new(DramConfig::default());
        for i in 0..n {
            let req = if i % 3 == 0 {
                Request::write(addrs[i], 64)
            } else if i % 3 == 1 {
                Request::local_read(addrs[i], 64)
            } else {
                Request::read(addrs[i], 64)
            };
            sys.enqueue(req.at_cycle(arrivals[i]));
        }
        let report = sys.service_all();
        assert_eq!(report.completions.len(), n, "seed {seed}");
        for (i, c) in report.completions.iter().enumerate() {
            assert!(c.data_start >= arrivals[i], "seed {seed}");
            assert!(c.finish > c.data_start, "seed {seed}");
            assert!(c.finish <= report.stats.elapsed_cycles, "seed {seed}");
        }
        assert_eq!(
            report.stats.reads + report.stats.writes,
            n as u64,
            "seed {seed}"
        );
        assert_eq!(
            report.stats.row_hits + report.stats.row_misses,
            n as u64,
            "seed {seed}"
        );
    });
}

#[test]
fn isa_roundtrips() {
    use nmp::isa::NmpInstruction;
    for_each_case(8, |rng, seed| {
        let vertex: u32 = rng.gen();
        let addr: u32 = rng.gen();
        let mask = rng.gen_range(0u8..16);
        let instructions = [
            NmpInstruction::ConfigSize {
                feature_length: vertex,
            },
            NmpInstruction::Evoke {
                vertex,
                feature_addr: addr,
            },
            NmpInstruction::Broadcast { mask, addr },
            NmpInstruction::BroadcastCore { vertex, mask, addr },
            NmpInstruction::Aggregate {
                vertex,
                agg_addr: addr,
            },
            NmpInstruction::InterInstanceAgg {
                vertex,
                output_addr: addr,
            },
            NmpInstruction::Copy {
                agg_addr: vertex,
                dst_addr: addr,
            },
            NmpInstruction::ConfigWeight { weight: addr },
            NmpInstruction::InterPathAgg {
                path1_addr: vertex,
                path2_addr: addr,
            },
        ];
        for inst in instructions {
            assert_eq!(
                NmpInstruction::decode(inst.encode()).unwrap(),
                inst,
                "seed {seed}"
            );
        }
    });
}

#[test]
fn feature_cache_matches_reference_lru() {
    use nmp::buffers::FeatureCache;
    for_each_case(9, |rng, seed| {
        let lines = rng.gen_range(2usize..12);
        let n_accesses = rng.gen_range(1usize..200);
        let line_bytes = 64;
        let mut cache = FeatureCache::new(lines * line_bytes, line_bytes);
        // Reference model: a Vec kept in LRU order.
        let mut reference: Vec<(u8, u32)> = Vec::new();
        for _ in 0..n_accesses {
            let ty = rng.gen_range(0u8..2);
            let id = rng.gen_range(0u32..40);
            let hit = cache.access(ty, id);
            let ref_hit = reference.contains(&(ty, id));
            assert_eq!(hit, ref_hit, "cache diverged on ({ty}, {id}), seed {seed}");
            reference.retain(|&k| k != (ty, id));
            reference.push((ty, id));
            if reference.len() > lines {
                reference.remove(0);
            }
        }
    });
}

#[test]
fn dram_snapshot_round_trips_mid_stream() {
    use checkpoint::Snapshot;
    use dramsim::{DramConfig, FaultConfig, MemorySystem, Request};
    for_each_case(11, |rng, seed| {
        let faults = if rng.gen_bool(0.5) {
            FaultConfig {
                seed: rng.gen(),
                bit_flip_rate: 0.02,
                stall_rate: 0.01,
                ..FaultConfig::off()
            }
        } else {
            FaultConfig::off()
        };
        let mut reference = MemorySystem::with_faults(DramConfig::default(), faults);
        let first = rng.gen_range(1usize..48);
        for _ in 0..first {
            reference.enqueue(Request::read(rng.gen_range(0u64..(1 << 22)), 64));
        }
        reference.try_service_all().expect("recoverable");

        // Round-trip the snapshot through the serialized form, then
        // feed both systems an identical second batch.
        let state = reference.snapshot();
        let json = serde_json::to_string(&state).unwrap();
        let back: dramsim::SystemState = serde_json::from_str(&json).unwrap();
        let mut resumed = MemorySystem::from_state(&back).expect("valid state");
        let second = rng.gen_range(1usize..48);
        let batch: Vec<u64> = (0..second)
            .map(|_| rng.gen_range(0u64..(1 << 22)))
            .collect();
        for &addr in &batch {
            reference.enqueue(Request::read(addr, 64));
            resumed.enqueue(Request::read(addr, 64));
        }
        let a = reference.try_service_all().expect("recoverable");
        let b = resumed.try_service_all().expect("recoverable");
        assert_eq!(a.stats, b.stats, "seed {seed}");
        assert_eq!(a.faults, b.faults, "seed {seed}");
        assert_eq!(a.completions, b.completions, "seed {seed}");
    });
}

#[test]
fn fault_injector_snapshot_resumes_identical_schedules() {
    use checkpoint::{Restore, Snapshot};
    use faultsim::{FaultConfig, FaultInjector};
    for_each_case(12, |rng, seed| {
        let cfg = FaultConfig {
            seed: rng.gen(),
            bit_flip_rate: 0.1,
            broadcast_drop_rate: 0.3,
            stall_rate: 0.2,
            ..FaultConfig::off()
        };
        let mut reference = FaultInjector::new(cfg);
        for _ in 0..rng.gen_range(0usize..64) {
            match rng.gen_range(0u8..3) {
                0 => {
                    reference.next_read_flips();
                }
                1 => {
                    reference.next_broadcast();
                }
                _ => {
                    reference.next_stall_cycles(100);
                }
            }
        }

        // Serialize the counters, restore into a fresh injector, and
        // verify both produce the same remaining fault schedule.
        let state = reference.snapshot();
        let json = serde_json::to_string(&state).unwrap();
        let back: faultsim::InjectorState = serde_json::from_str(&json).unwrap();
        let mut resumed = FaultInjector::new(cfg);
        resumed.restore(&back).expect("same seed restores");
        for _ in 0..32 {
            assert_eq!(
                reference.next_read_flips(),
                resumed.next_read_flips(),
                "seed {seed}"
            );
            assert_eq!(
                reference.next_broadcast(),
                resumed.next_broadcast(),
                "seed {seed}"
            );
            assert_eq!(
                reference.next_stall_cycles(100),
                resumed.next_stall_cycles(100),
                "seed {seed}"
            );
        }
    });
}

#[test]
fn functional_chunked_stepping_matches_straight_run() {
    use hetgraph::datasets::{generate, DatasetId, GeneratorConfig};
    use hgnn::{OpCounters, Projection};
    use nmp::{FunctionalSim, NmpConfig, ResumableRun};
    // Simulation cases are expensive; a handful of random budgets
    // still cover boundary-straddling chunk sizes.
    for case in 0..4u64 {
        let seed = 13 * (case + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.005));
        let features = FeatureStore::random(&ds.graph, seed);
        let proj = Projection::random(&ds.graph, 8, seed);
        let mut counters = OpCounters::default();
        let hidden = proj.project(&ds.graph, &features, &mut counters).unwrap();
        let cfg = NmpConfig {
            hidden_dim: 8,
            ..NmpConfig::default()
        };
        let straight = FunctionalSim::new(cfg)
            .run(&ds.graph, &hidden, ModelKind::Magnn, &ds.metapaths)
            .unwrap();
        let budget = rng.gen_range(1u64..200);
        let mut run = ResumableRun::new(cfg);
        while !run
            .step(&ds.graph, &hidden, ModelKind::Magnn, &ds.metapaths, budget)
            .unwrap()
        {
            // Rebuild from the snapshot at every chunk boundary, as a
            // resume would.
            let state = checkpoint::Snapshot::snapshot(&run);
            run = ResumableRun::from_state(&state).unwrap();
        }
        let resumed = run.finish(&ds.graph, &ds.metapaths).unwrap();
        assert_eq!(resumed.report, straight.report, "budget {budget}");
        assert_eq!(
            resumed.embeddings.max_abs_diff(&straight.embeddings),
            0.0,
            "budget {budget}"
        );
    }
}

#[test]
fn carpu_generates_exactly_the_product() {
    use nmp::units::CarPu;
    for_each_case(10, |rng, seed| {
        let left: Vec<u32> = (0..rng.gen_range(0usize..12)).map(|_| rng.gen()).collect();
        let right: Vec<u32> = (0..rng.gen_range(0usize..12)).map(|_| rng.gen()).collect();
        let center: u32 = rng.gen();
        let capacity = rng.gen_range(1usize..8);
        let unit = CarPu::new(capacity);
        let run = unit.generate(&left, center, &right);
        assert_eq!(run.instances.len(), left.len() * right.len(), "seed {seed}");
        // Every pair appears exactly once.
        let mut pairs: Vec<(u32, u32)> = run.instances.iter().map(|i| (i.left, i.right)).collect();
        pairs.sort_unstable();
        let mut expected: Vec<(u32, u32)> = left
            .iter()
            .flat_map(|&l| right.iter().map(move |&r| (l, r)))
            .collect();
        expected.sort_unstable();
        assert_eq!(pairs, expected, "seed {seed}");
    });
}

//! Cross-crate end-to-end tests: every dataset preset × every model
//! runs through the full pipeline — software engines, NMP functional
//! simulation, memory analysis — and all results agree.

use hetgraph::datasets::{generate, DatasetId, GeneratorConfig};
use hetgraph::instances::count_instances;
use hgnn::engine::{InferenceEngine, MaterializedEngine, OnTheFlyEngine};
use hgnn::{FeatureStore, ModelConfig, ModelKind};
use metanmp::{compare, compare_memory, Simulator};
use nmp::NmpConfig;

/// Small scales per dataset so the materialized engine stays fast.
fn small(id: DatasetId) -> f64 {
    match id {
        DatasetId::Dblp => 0.02,
        DatasetId::Imdb => 0.02,
        DatasetId::Lastfm => 0.02,
        DatasetId::OgbMag => 0.0002,
        DatasetId::Oag => 0.0001,
    }
}

#[test]
fn engines_agree_on_every_dataset_and_model() {
    for id in DatasetId::ALL {
        let ds = generate(id, GeneratorConfig::at_scale(small(id)));
        let total: u128 = ds
            .metapaths
            .iter()
            .map(|mp| count_instances(&ds.graph, mp).unwrap())
            .sum();
        if total > 3_000_000 {
            // Keep CI time bounded; the scale ladder in the experiment
            // harness covers bigger runs.
            continue;
        }
        let features = FeatureStore::random(&ds.graph, 1);
        for kind in ModelKind::ALL {
            let config = ModelConfig::new(kind)
                .with_hidden_dim(8)
                .with_attention(false);
            let a = MaterializedEngine
                .run(&ds.graph, &features, &config, &ds.metapaths)
                .unwrap();
            let b = OnTheFlyEngine
                .run(&ds.graph, &features, &config, &ds.metapaths)
                .unwrap();
            let diff = a.embeddings.max_abs_diff(&b.embeddings);
            assert!(diff < 1e-3, "{id:?}/{kind:?} diverged by {diff}");
            assert_eq!(a.profile.instances, b.profile.instances);
        }
    }
}

#[test]
fn simulator_verifies_hardware_against_software() {
    for (id, kind) in [
        (DatasetId::Imdb, ModelKind::Magnn),
        (DatasetId::Dblp, ModelKind::Han),
        (DatasetId::Lastfm, ModelKind::Shgnn),
    ] {
        let sim = Simulator::builder()
            .dataset(id)
            .scale(small(id))
            .model(kind)
            .hidden_dim(8)
            .build()
            .unwrap();
        let outcome = sim.run().unwrap();
        assert!(
            outcome.matches_reference,
            "{id:?}/{kind:?}: hardware diverged by {}",
            outcome.max_reference_diff
        );
        assert!(outcome.nmp.seconds > 0.0);
        assert!(outcome.nmp.energy.total_pj() > 0.0);
    }
}

#[test]
fn comparison_produces_the_paper_ordering() {
    let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.05));
    let cfg = NmpConfig {
        hidden_dim: 16,
        ..NmpConfig::default()
    };
    let c = compare(&ds, ModelKind::Magnn, 16, &cfg, None).unwrap();
    let get = |name: &str| {
        c.platforms
            .iter()
            .find(|p| p.name == name)
            .unwrap()
            .speedup_vs_cpu
    };
    // Figure 12's ordering: CPU < GPU < HyGCN < AWB-GCN < RecNMP < MetaNMP.
    assert!(get("GPU") > 1.0);
    assert!(get("HyGCN") > get("GPU"));
    assert!(get("AWB-GCN") > get("HyGCN"));
    assert!(get("RecNMP") > get("AWB-GCN"));
    assert!(c.metanmp_speedup > get("RecNMP"));
}

#[test]
fn memory_reduction_grows_with_metapath_length() {
    let ds = generate(DatasetId::Dblp, GeneratorConfig::at_scale(0.2));
    let short = compare_memory(
        &ds.graph,
        ds.metapath("APA").unwrap(),
        ModelKind::Magnn,
        64,
        8,
    )
    .unwrap();
    let long = compare_memory(
        &ds.graph,
        ds.metapath("APTPA").unwrap(),
        ModelKind::Magnn,
        64,
        8,
    )
    .unwrap();
    assert!(long.reduction() > short.reduction());
    assert!(long.instances_to_graph_ratio() > short.instances_to_graph_ratio());
}

#[test]
fn update_stream_keeps_everything_consistent() {
    use hetgraph::update::{apply_update, generate_update_batches};
    let ds = generate(DatasetId::Imdb, GeneratorConfig::at_scale(0.02));
    let mut graph = ds.graph.clone();
    let config = ModelConfig::new(ModelKind::Magnn)
        .with_hidden_dim(8)
        .with_attention(false);
    for batch in generate_update_batches(&graph, 0.10, 2, 3) {
        graph = apply_update(&graph, &batch).unwrap();
        let features = FeatureStore::random(&graph, 3);
        let a = MaterializedEngine
            .run(&graph, &features, &config, &ds.metapaths)
            .unwrap();
        let b = OnTheFlyEngine
            .run(&graph, &features, &config, &ds.metapaths)
            .unwrap();
        assert!(a.embeddings.max_abs_diff(&b.embeddings) < 1e-3);
    }
}
